// Cross-validation: every fast cohort engine must be statistically
// indistinguishable from the generic reference engine on the same scenarios.
// Exact trajectory coupling is impossible (different rng consumption), so we
// compare distribution summaries over many seeds — deterministic, but
// sensitive to real semantic divergence. Three layers:
//
//   1. aggregate statistics (completion times, send volumes) — the original
//      checks, now phrased through tests/stat_assert.hpp;
//   2. METRIC parity: latency_report / energy_report / successes_in_window
//      computed from fast-engine runs must match the reference engine on
//      every registry scenario both support (the fast engines attribute
//      sends, so energy is no longer generic-only);
//   3. a randomized differential fuzz sweep over ScenarioRegistry params ×
//      seeds asserting (a) bit-identical SimResult when the same engine
//      re-runs the same case, (b) exact equality of the adversary-driven
//      counters (slots/arrivals/jammed) across engines — the registry's
//      adversaries are history-blind, so both engines must consume the
//      identical 0xAD stream — and (c) full internal consistency of every
//      recorded result, node stats and slot trace included.
//
// The tests enumerate the EngineRegistry: for each spec, every compatible
// engine other than the reference is validated against it. A newly
// registered engine is pulled into these comparisons automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/engine.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/batch.hpp"
#include "stat_assert.hpp"

namespace cr {
namespace {

constexpr const char* kReference = "generic";

/// Non-reference engines that can execute `spec` (the candidates to verify).
std::vector<const Engine*> candidates(const ProtocolSpec& spec) {
  std::vector<const Engine*> out;
  for (const Engine* engine : EngineRegistry::instance().compatible(spec))
    if (engine->name() != kReference) out.push_back(engine);
  return out;
}

SimResult run_batch(const Engine& engine, const ProtocolSpec& spec, std::uint64_t n,
                    double jam, std::uint64_t seed) {
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 400'000;
  cfg.seed = seed;
  cfg.stop_when_empty = true;
  return engine.run(spec, adv, cfg);
}

void compare_batch_metric(const ProtocolSpec& spec, std::uint64_t n, double jam,
                          std::uint64_t base_seed, int reps, double rel_slack,
                          const std::function<double(const SimResult&)>& metric,
                          bool expect_complete) {
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs = replicate(reps, base_seed, [&](std::uint64_t s) {
    return run_batch(reference, spec, n, jam, s);
  });
  if (expect_complete) {
    for (const auto& r : ref_runs) ASSERT_EQ(r.successes, n);
  }
  const auto m_ref = collect(ref_runs, metric);
  for (const Engine* engine : candidates(spec)) {
    const auto runs = replicate(reps, base_seed, [&](std::uint64_t s) {
      return run_batch(*engine, spec, n, jam, s);
    });
    if (expect_complete) {
      for (const auto& r : runs) ASSERT_EQ(r.successes, n) << engine->name();
    }
    const auto m_eng = collect(runs, metric);
    EXPECT_TRUE(stat::means_agree(m_ref, m_eng, /*z=*/2.0, rel_slack))
        << "engine=" << engine->name();
  }
}

TEST(CrossEngine, CjzBatchCompletionTimesAgree) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  ASSERT_FALSE(candidates(spec).empty());
  // Means within ~30% of each other plus sampling noise (generous; catches
  // systematic drift).
  compare_batch_metric(spec, 48, 0.0, 100, 24, 0.30,
                       [](const SimResult& r) { return double(r.last_success); },
                       /*expect_complete=*/true);
}

TEST(CrossEngine, CjzBatchSendVolumesAgree) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  compare_batch_metric(spec, 48, 0.0, 300, 24, 0.30,
                       [](const SimResult& r) { return double(r.total_sends); },
                       /*expect_complete=*/false);
}

TEST(CrossEngine, CjzUnderJammingAgrees) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  compare_batch_metric(spec, 32, 0.25, 500, 20, 0.35,
                       [](const SimResult& r) { return double(r.last_success); },
                       /*expect_complete=*/false);
}

TEST(CrossEngine, HdataBatchAgrees) {
  // h_data completion has a truncated-Pareto tail (the lone-survivor phase),
  // so means of last_success are horizon-dominated and noisy. Compare a
  // concentrated statistic instead: successes within a fixed window.
  const ProtocolSpec spec = profile_protocol(profiles::h_data());
  ASSERT_FALSE(candidates(spec).empty());
  const std::uint64_t n = 64;
  const int reps = 24;
  const slot_t window = 4096;
  auto run_windowed = [&](const Engine& engine, std::uint64_t s) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = window;
    cfg.seed = s;
    return engine.run(spec, adv, cfg);
  };
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs =
      replicate(reps, 700, [&](std::uint64_t s) { return run_windowed(reference, s); });
  const auto m_ref =
      collect(ref_runs, [](const SimResult& r) { return double(r.successes); });
  for (const Engine* engine : candidates(spec)) {
    const auto runs =
        replicate(reps, 700, [&](std::uint64_t s) { return run_windowed(*engine, s); });
    const auto m_eng = collect(runs, [](const SimResult& r) { return double(r.successes); });
    EXPECT_TRUE(stat::means_agree(m_ref, m_eng, /*z=*/2.0, /*rel_slack=*/0.12,
                                  /*abs_slack=*/1.0))
        << "engine=" << engine->name();
  }
}

TEST(CrossEngine, DynamicArrivalFirstSuccessAgrees) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  const int reps = 24;
  auto run_one = [&](const Engine& engine, std::uint64_t s) {
    ComposedAdversary adv(bernoulli_arrivals(0.01, 1, 5000), no_jam());
    SimConfig cfg;
    cfg.horizon = 20'000;
    cfg.seed = s;
    return engine.run(spec, adv, cfg);
  };
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs =
      replicate(reps, 900, [&](std::uint64_t s) { return run_one(reference, s); });
  const auto s_ref =
      collect(ref_runs, [](const SimResult& r) { return double(r.successes); });
  for (const Engine* engine : candidates(spec)) {
    const auto runs =
        replicate(reps, 900, [&](std::uint64_t s) { return run_one(*engine, s); });
    const auto s_eng = collect(runs, [](const SimResult& r) { return double(r.successes); });
    EXPECT_TRUE(stat::means_agree(s_ref, s_eng, /*z=*/2.0, /*rel_slack=*/0.2,
                                  /*abs_slack=*/2.0))
        << "engine=" << engine->name();
  }
}

// ---------------------------------------------------------------------------
// Metric parity: latency_report / energy_report / successes_in_window from a
// fast engine must match the reference engine, on every registry scenario.
// ---------------------------------------------------------------------------

struct MetricSample {
  Accumulator latency_mean, latency_p99, energy_mean, energy_p99, departed, window;
};

MetricSample sample_metrics(const Engine& engine, const std::string& scenario,
                            const ScenarioParams& params, int reps, std::uint64_t base_seed) {
  MetricSample out;
  const auto runs = replicate(reps, base_seed, [&](std::uint64_t s) {
    ScenarioParams p = params;
    p.seed = s;
    Scenario sc = ScenarioRegistry::instance().build(scenario, p);
    sc.config.recording = RecordingConfig::node_stats();
    EXPECT_TRUE(engine.supports(sc.protocol));
    return run_scenario(engine, sc);
  }, /*threads=*/2);
  for (const SimResult& r : runs) {
    const LatencyReport lat = latency_report(r);
    const EnergyReport energy = energy_report(r);
    out.latency_mean.add(lat.mean);
    out.latency_p99.add(lat.p99);
    out.energy_mean.add(energy.mean);
    out.energy_p99.add(energy.p99);
    out.departed.add(static_cast<double>(lat.departed));
    out.window.add(static_cast<double>(
        successes_in_window(r, 1, std::max<slot_t>(1, params.horizon / 2))));
  }
  return out;
}

TEST(CrossEngineMetrics, LatencyAndEnergyParityOnEveryRegistryScenario) {
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const int reps = 12;
  for (const std::string& name : ScenarioRegistry::instance().names()) {
    ScenarioParams params;
    params.horizon = 8192;
    params.n = 32;
    params.jam = 0.15;
    params.rate = 0.02;
    Scenario probe = ScenarioRegistry::instance().build(name, params);
    const auto fast_engines = candidates(probe.protocol);
    ASSERT_FALSE(fast_engines.empty()) << name;
    const MetricSample ref = sample_metrics(reference, name, params, reps, 4000);
    ASSERT_GT(ref.departed.mean(), 0.0) << name << ": scenario must produce departures";
    for (const Engine* engine : fast_engines) {
      const MetricSample fast = sample_metrics(*engine, name, params, reps, 4000);
      const std::string tag = name + "/" + engine->name();
      EXPECT_TRUE(stat::means_agree(ref.departed, fast.departed, 3.0, 0.10, 1.0)) << tag;
      EXPECT_TRUE(stat::means_agree(ref.latency_mean, fast.latency_mean, 3.0, 0.15, 1.0))
          << tag;
      EXPECT_TRUE(stat::means_agree(ref.latency_p99, fast.latency_p99, 3.0, 0.30, 4.0))
          << tag;
      EXPECT_TRUE(stat::means_agree(ref.energy_mean, fast.energy_mean, 3.0, 0.15, 0.5))
          << tag;
      EXPECT_TRUE(stat::means_agree(ref.energy_p99, fast.energy_p99, 3.0, 0.30, 2.0)) << tag;
      EXPECT_TRUE(stat::means_agree(ref.window, fast.window, 3.0, 0.15, 2.0)) << tag;
    }
  }
}

TEST(CrossEngineMetrics, ProfileProtocolEnergyParity) {
  // fast_batch vs generic on an h_data batch: per-node sends must have the
  // same distribution now that the cohort engine attributes them.
  const ProtocolSpec spec = profile_protocol(profiles::h_data());
  ASSERT_FALSE(candidates(spec).empty());
  const std::uint64_t n = 48;
  const int reps = 16;
  auto sample = [&](const Engine& engine) {
    Accumulator energy_mean, latency_mean;
    const auto runs = replicate(reps, 4400, [&](std::uint64_t s) {
      ComposedAdversary adv(batch_arrival(n, 1), no_jam());
      SimConfig cfg;
      cfg.horizon = 16'384;
      cfg.seed = s;
      cfg.recording = RecordingConfig::node_stats();
      return engine.run(spec, adv, cfg);
    }, /*threads=*/2);
    for (const SimResult& r : runs) {
      energy_mean.add(energy_report(r).mean);
      latency_mean.add(latency_report(r).mean);
    }
    return std::pair{energy_mean, latency_mean};
  };
  const auto [ref_energy, ref_latency] = sample(EngineRegistry::instance().at(kReference));
  for (const Engine* engine : candidates(spec)) {
    const auto [fast_energy, fast_latency] = sample(*engine);
    EXPECT_TRUE(stat::means_agree(ref_energy, fast_energy, 3.0, 0.15, 0.5))
        << engine->name();
    EXPECT_TRUE(stat::means_agree(ref_latency, fast_latency, 3.0, 0.15, 2.0))
        << engine->name();
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz sweep.
// ---------------------------------------------------------------------------

void expect_internally_consistent(const SimResult& r, const std::string& tag) {
  // Success bookkeeping.
  ASSERT_EQ(r.success_times.size(), r.successes) << tag;
  EXPECT_TRUE(std::is_sorted(r.success_times.begin(), r.success_times.end())) << tag;
  if (!r.success_times.empty()) {
    EXPECT_EQ(r.success_times.front(), r.first_success) << tag;
    EXPECT_EQ(r.success_times.back(), r.last_success) << tag;
  } else {
    EXPECT_EQ(r.first_success, 0u) << tag;
  }
  // Slot trace re-derivation.
  ASSERT_EQ(r.slot_outcomes.size(), r.slots) << tag;
  std::uint64_t successes = 0, jammed = 0, sends = 0;
  for (std::size_t i = 0; i < r.slot_outcomes.size(); ++i) {
    const SlotOutcome& out = r.slot_outcomes[i];
    EXPECT_EQ(out.slot, i + 1) << tag;
    successes += out.success() ? 1 : 0;
    jammed += out.jammed ? 1 : 0;
    sends += out.senders;
    if (out.jammed) {
      EXPECT_FALSE(out.success()) << tag;
    }
    if (out.success()) {
      EXPECT_EQ(out.senders, 1u) << tag;
    }
  }
  EXPECT_EQ(successes, r.successes) << tag;
  EXPECT_EQ(jammed, r.jammed_slots) << tag;
  EXPECT_EQ(sends, r.total_sends) << tag;
  // Node-stats accounting: every arrival is either departed or stranded, and
  // attributed sends cover total_sends exactly on every engine.
  ASSERT_EQ(r.node_stats.size(), r.arrivals) << tag;
  std::uint64_t departed = 0, stranded = 0, attributed = 0;
  for (const NodeStats& ns : r.node_stats) {
    attributed += ns.sends;
    if (ns.departed()) {
      ++departed;
      EXPECT_GE(ns.departure, ns.arrival) << tag;
      EXPECT_GE(ns.latency(), 1u) << tag;
    } else {
      ++stranded;
    }
    EXPECT_GE(ns.arrival, 1u) << tag;
    EXPECT_LE(ns.arrival, r.slots) << tag;
  }
  EXPECT_EQ(departed, r.successes) << tag;
  EXPECT_EQ(stranded, r.live_at_end) << tag;
  EXPECT_EQ(attributed, r.total_sends) << tag;
}

TEST(CrossEngineFuzz, RandomizedRegistrySweep) {
  // ~200 randomized (workload, params, seed) cases. Each case runs the
  // reference engine and the preferred fast engine at the kFullTrace tier,
  // re-runs both (bit-identical SimResult expected), and re-runs the fast
  // engine with recording off (aggregates must not move: recording is pure
  // observation). Horizons are small so the whole sweep stays well under
  // the 5s budget.
  const std::vector<std::string> workloads = ScenarioRegistry::instance().names();
  const Engine& reference = EngineRegistry::instance().at(kReference);
  Rng fuzz(0xF0220721u);
  const char* regimes[] = {"const", "log", "exp_sqrt_log"};
  const int kCases = 200;
  for (int c = 0; c < kCases; ++c) {
    ScenarioParams p;
    p.horizon = 256 + fuzz.uniform_u64(768);
    p.seed = fuzz.next_u64();
    p.n = 1 + fuzz.uniform_u64(24);
    p.jam = (c % 3 == 0) ? 0.4 * fuzz.uniform01() : 0.0;
    p.rate = 0.08 * fuzz.uniform01();
    p.arrival_margin = 4.0 + 12.0 * fuzz.uniform01();
    p.jam_margin = 4.0 + 8.0 * fuzz.uniform01();
    p.g_regime = regimes[fuzz.uniform_u64(3)];
    p.gamma = (p.g_regime == std::string("exp_sqrt_log")) ? 1.0 : 2.0 + 4.0 * fuzz.uniform01();
    const std::string& workload = workloads[static_cast<std::size_t>(c) % workloads.size()];
    const std::string tag =
        workload + " case=" + std::to_string(c) + " seed=" + std::to_string(p.seed);

    auto run_on = [&](const Engine& engine, RecordingConfig recording) {
      Scenario sc = ScenarioRegistry::instance().build(workload, p);
      sc.config.recording = recording;
      return run_scenario(engine, sc);
    };
    Scenario probe = ScenarioRegistry::instance().build(workload, p);
    const auto fast_engines = candidates(probe.protocol);
    ASSERT_FALSE(fast_engines.empty()) << tag;
    const Engine& fast = *fast_engines.front();

    const SimResult ref = run_on(reference, RecordingConfig::full_trace());
    const SimResult fst = run_on(fast, RecordingConfig::full_trace());

    // (a) determinism: same engine, same case -> bit-identical result.
    EXPECT_EQ(ref, run_on(reference, RecordingConfig::full_trace())) << tag;
    EXPECT_EQ(fst, run_on(fast, RecordingConfig::full_trace())) << tag;

    // (b) the adversary stream is engine-independent for the registry's
    // history-blind adversaries: these counters must match EXACTLY.
    // (ASSERT: the per-slot loop below indexes both traces by ref.slots.)
    ASSERT_EQ(ref.slots, fst.slots) << tag;
    EXPECT_EQ(ref.arrivals, fst.arrivals) << tag;
    EXPECT_EQ(ref.jammed_slots, fst.jammed_slots) << tag;
    // Jam decisions land on the same slots in both traces.
    for (slot_t s = 0; s < ref.slots; ++s)
      ASSERT_EQ(ref.slot_outcomes[s].jammed, fst.slot_outcomes[s].jammed) << tag;

    // (c) every recorded result is internally consistent.
    expect_internally_consistent(ref, tag + " [generic]");
    expect_internally_consistent(fst, tag + " [" + fast.name() + "]");

    // (d) recording tiers are pure observation: aggregates identical with
    // recording off.
    const SimResult bare = run_on(fast, RecordingConfig::none());
    EXPECT_EQ(bare.slots, fst.slots) << tag;
    EXPECT_EQ(bare.successes, fst.successes) << tag;
    EXPECT_EQ(bare.total_sends, fst.total_sends) << tag;
    EXPECT_EQ(bare.first_success, fst.first_success) << tag;
    EXPECT_EQ(bare.last_success, fst.last_success) << tag;
    EXPECT_EQ(bare.active_slots, fst.active_slots) << tag;
    EXPECT_EQ(bare.live_at_end, fst.live_at_end) << tag;
  }
}

TEST(CrossEngineFuzz, LockstepRandomizedSweep) {
  // Same differential contract for the lockstep engine's single-run path
  // (counter substrate). The protocol draws differ from the sequential
  // engines by design, but the adversary stream is substrate-independent:
  // the lockstep engine forks the SAME kAdversary stream off the seed, so
  // slots/arrivals/jammed and the per-slot jam pattern must match the
  // reference engine EXACTLY on every registry workload.
  const std::vector<std::string> workloads = ScenarioRegistry::instance().names();
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const Engine* lockstep = EngineRegistry::instance().find("lockstep");
  ASSERT_NE(lockstep, nullptr);
  Rng fuzz(0x10C857E9u);
  const char* regimes[] = {"const", "log", "exp_sqrt_log"};
  const int kCases = 100;
  for (int c = 0; c < kCases; ++c) {
    ScenarioParams p;
    p.horizon = 256 + fuzz.uniform_u64(768);
    p.seed = fuzz.next_u64();
    p.n = 1 + fuzz.uniform_u64(24);
    p.jam = (c % 3 == 0) ? 0.4 * fuzz.uniform01() : 0.0;
    p.rate = 0.08 * fuzz.uniform01();
    p.arrival_margin = 4.0 + 12.0 * fuzz.uniform01();
    p.jam_margin = 4.0 + 8.0 * fuzz.uniform01();
    p.g_regime = regimes[fuzz.uniform_u64(3)];
    p.gamma = (p.g_regime == std::string("exp_sqrt_log")) ? 1.0 : 2.0 + 4.0 * fuzz.uniform01();
    const std::string& workload = workloads[static_cast<std::size_t>(c) % workloads.size()];
    const std::string tag =
        workload + " lockstep case=" + std::to_string(c) + " seed=" + std::to_string(p.seed);

    auto run_on = [&](const Engine& engine, RecordingConfig recording) {
      Scenario sc = ScenarioRegistry::instance().build(workload, p);
      sc.config.recording = recording;
      return run_scenario(engine, sc);
    };
    const SimResult ref = run_on(reference, RecordingConfig::full_trace());
    const SimResult lck = run_on(*lockstep, RecordingConfig::full_trace());

    // (a) determinism: bit-identical on a re-run.
    EXPECT_EQ(lck, run_on(*lockstep, RecordingConfig::full_trace())) << tag;

    // (b) the adversary-driven counters match the reference exactly.
    ASSERT_EQ(ref.slots, lck.slots) << tag;
    EXPECT_EQ(ref.arrivals, lck.arrivals) << tag;
    EXPECT_EQ(ref.jammed_slots, lck.jammed_slots) << tag;
    for (slot_t s = 0; s < ref.slots; ++s)
      ASSERT_EQ(ref.slot_outcomes[s].jammed, lck.slot_outcomes[s].jammed) << tag;

    // (c) internal consistency of the recorded result.
    expect_internally_consistent(lck, tag + " [lockstep]");

    // (d) recording tiers are pure observation.
    const SimResult bare = run_on(*lockstep, RecordingConfig::none());
    EXPECT_EQ(bare.slots, lck.slots) << tag;
    EXPECT_EQ(bare.successes, lck.successes) << tag;
    EXPECT_EQ(bare.total_sends, lck.total_sends) << tag;
    EXPECT_EQ(bare.first_success, lck.first_success) << tag;
    EXPECT_EQ(bare.last_success, lck.last_success) << tag;
    EXPECT_EQ(bare.active_slots, lck.active_slots) << tag;
    EXPECT_EQ(bare.live_at_end, lck.live_at_end) << tag;
  }
}

TEST(CrossEngineFuzz, SparseVsDenseRandomizedSweep) {
  // The sparse node table is a pure storage change: on ~100 randomized
  // registry cases, every fast engine must produce a BIT-IDENTICAL SimResult
  // with node_table = kSparse as with kDense — slots, arrivals, jammed
  // pattern, success times, node stats and the full slot trace all covered
  // by SimResult::operator== at the kFullTrace tier, and the aggregates
  // re-checked with recording off (slot reuse must not leak into any tier).
  const std::vector<std::string> workloads = ScenarioRegistry::instance().names();
  Rng fuzz(0x5BA25EDEu);
  const char* regimes[] = {"const", "log", "exp_sqrt_log"};
  const int kCases = 100;
  for (int c = 0; c < kCases; ++c) {
    ScenarioParams p;
    p.horizon = 256 + fuzz.uniform_u64(768);
    p.seed = fuzz.next_u64();
    p.n = 1 + fuzz.uniform_u64(24);
    p.jam = (c % 3 == 0) ? 0.4 * fuzz.uniform01() : 0.0;
    p.rate = 0.08 * fuzz.uniform01();
    p.arrival_margin = 4.0 + 12.0 * fuzz.uniform01();
    p.jam_margin = 4.0 + 8.0 * fuzz.uniform01();
    p.g_regime = regimes[fuzz.uniform_u64(3)];
    p.gamma = (p.g_regime == std::string("exp_sqrt_log")) ? 1.0 : 2.0 + 4.0 * fuzz.uniform01();
    const std::string& workload = workloads[static_cast<std::size_t>(c) % workloads.size()];

    auto run_on = [&](const Engine& engine, RecordingConfig recording, NodeTableKind table) {
      Scenario sc = ScenarioRegistry::instance().build(workload, p);
      sc.config.recording = recording;
      sc.config.node_table = table;
      return run_scenario(engine, sc);
    };
    Scenario probe = ScenarioRegistry::instance().build(workload, p);
    for (const Engine* engine : candidates(probe.protocol)) {
      const std::string tag = workload + " sparse case=" + std::to_string(c) + " engine=" +
                              engine->name() + " seed=" + std::to_string(p.seed);
      const SimResult dense = run_on(*engine, RecordingConfig::full_trace(),
                                     NodeTableKind::kDense);
      const SimResult sparse = run_on(*engine, RecordingConfig::full_trace(),
                                      NodeTableKind::kSparse);
      EXPECT_EQ(dense, sparse) << tag;
      EXPECT_EQ(run_on(*engine, RecordingConfig::none(), NodeTableKind::kDense),
                run_on(*engine, RecordingConfig::none(), NodeTableKind::kSparse))
          << tag << " [recording off]";
    }
  }
}

TEST(CrossEngineFuzz, SparseVsDenseProfileSweep) {
  // Same storage-purity contract for fast_batch (profile protocols), whose
  // sparse mode additionally erases drained cohorts eagerly instead of on
  // the periodic dense sweep.
  const ProtocolSpec spec = profile_protocol(profiles::h_data());
  const auto fast_engines = candidates(spec);
  ASSERT_FALSE(fast_engines.empty());
  const Engine& fast = *fast_engines.front();
  Rng fuzz(0x5BA7C4u);
  for (int c = 0; c < 20; ++c) {
    const std::uint64_t n = 1 + fuzz.uniform_u64(32);
    const slot_t horizon = 256 + fuzz.uniform_u64(768);
    const double jam = (c % 2 == 0) ? 0.3 * fuzz.uniform01() : 0.0;
    const std::uint64_t seed = fuzz.next_u64();
    const std::string tag = "profile sparse case=" + std::to_string(c);
    auto run_on = [&](RecordingConfig recording, NodeTableKind table) {
      ComposedAdversary adv(batch_arrival(n, 1 + (c % 5)),
                            jam > 0 ? iid_jammer(jam) : no_jam());
      SimConfig cfg;
      cfg.horizon = horizon;
      cfg.seed = seed;
      cfg.recording = recording;
      cfg.node_table = table;
      return fast.run(spec, adv, cfg);
    };
    EXPECT_EQ(run_on(RecordingConfig::full_trace(), NodeTableKind::kDense),
              run_on(RecordingConfig::full_trace(), NodeTableKind::kSparse))
        << tag;
    EXPECT_EQ(run_on(RecordingConfig::none(), NodeTableKind::kDense),
              run_on(RecordingConfig::none(), NodeTableKind::kSparse))
        << tag << " [recording off]";
  }
}

TEST(CrossEngineFuzz, ProfileEngineRandomizedSweep) {
  // Same differential contract for fast_batch (profile specs are not in the
  // scenario registry, which is CJZ-flavoured).
  const ProtocolSpec spec = profile_protocol(profiles::h_data());
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto fast_engines = candidates(spec);
  ASSERT_FALSE(fast_engines.empty());
  const Engine& fast = *fast_engines.front();
  Rng fuzz(0xBA7C4u);
  for (int c = 0; c < 60; ++c) {
    const std::uint64_t n = 1 + fuzz.uniform_u64(32);
    const slot_t horizon = 256 + fuzz.uniform_u64(768);
    const double jam = (c % 2 == 0) ? 0.3 * fuzz.uniform01() : 0.0;
    const std::uint64_t seed = fuzz.next_u64();
    const std::string tag = "profile case=" + std::to_string(c);
    auto run_on = [&](const Engine& engine, RecordingConfig recording) {
      ComposedAdversary adv(batch_arrival(n, 1 + (c % 5)),
                            jam > 0 ? iid_jammer(jam) : no_jam());
      SimConfig cfg;
      cfg.horizon = horizon;
      cfg.seed = seed;
      cfg.recording = recording;
      return engine.run(spec, adv, cfg);
    };
    const SimResult ref = run_on(reference, RecordingConfig::full_trace());
    const SimResult fst = run_on(fast, RecordingConfig::full_trace());
    EXPECT_EQ(fst, run_on(fast, RecordingConfig::full_trace())) << tag;
    EXPECT_EQ(ref.slots, fst.slots) << tag;
    EXPECT_EQ(ref.arrivals, fst.arrivals) << tag;
    EXPECT_EQ(ref.jammed_slots, fst.jammed_slots) << tag;
    expect_internally_consistent(ref, tag + " [generic]");
    expect_internally_consistent(fst, tag + " [" + fast.name() + "]");
    const SimResult bare = run_on(fast, RecordingConfig::none());
    EXPECT_EQ(bare.successes, fst.successes) << tag;
    EXPECT_EQ(bare.total_sends, fst.total_sends) << tag;
  }
}

}  // namespace
}  // namespace cr
