// Cross-validation: every fast cohort engine must be statistically
// indistinguishable from the generic reference engine on the same scenarios.
// Exact trajectory coupling is impossible (different rng consumption), so we
// compare distribution summaries over many seeds with wide tolerances —
// deterministic, but sensitive to real semantic divergence.
//
// The tests enumerate the EngineRegistry: for each spec, every compatible
// engine other than the reference is validated against it. A newly
// registered engine is pulled into these comparisons automatically.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/engine.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/batch.hpp"

namespace cr {
namespace {

constexpr const char* kReference = "generic";

/// Non-reference engines that can execute `spec` (the candidates to verify).
std::vector<const Engine*> candidates(const ProtocolSpec& spec) {
  std::vector<const Engine*> out;
  for (const Engine* engine : EngineRegistry::instance().compatible(spec))
    if (engine->name() != kReference) out.push_back(engine);
  return out;
}

SimResult run_batch(const Engine& engine, const ProtocolSpec& spec, std::uint64_t n,
                    double jam, std::uint64_t seed) {
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 400'000;
  cfg.seed = seed;
  cfg.stop_when_empty = true;
  return engine.run(spec, adv, cfg);
}

void compare_batch_metric(const ProtocolSpec& spec, std::uint64_t n, double jam,
                          std::uint64_t base_seed, int reps, double tolerance,
                          const std::function<double(const SimResult&)>& metric,
                          bool expect_complete) {
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs = replicate(reps, base_seed, [&](std::uint64_t s) {
    return run_batch(reference, spec, n, jam, s);
  });
  if (expect_complete) {
    for (const auto& r : ref_runs) ASSERT_EQ(r.successes, n);
  }
  const auto m_ref = collect(ref_runs, metric);
  for (const Engine* engine : candidates(spec)) {
    const auto runs = replicate(reps, base_seed, [&](std::uint64_t s) {
      return run_batch(*engine, spec, n, jam, s);
    });
    if (expect_complete) {
      for (const auto& r : runs) ASSERT_EQ(r.successes, n) << engine->name();
    }
    const auto m_eng = collect(runs, metric);
    EXPECT_LT(std::abs(m_ref.mean() - m_eng.mean()),
              tolerance * std::max(m_ref.mean(), m_eng.mean()))
        << "engine=" << engine->name() << " reference=" << m_ref.mean()
        << " candidate=" << m_eng.mean();
  }
}

TEST(CrossEngine, CjzBatchCompletionTimesAgree) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  ASSERT_FALSE(candidates(spec).empty());
  // Means within 35% of each other (generous; catches systematic drift).
  compare_batch_metric(spec, 48, 0.0, 100, 24, 0.35,
                       [](const SimResult& r) { return double(r.last_success); },
                       /*expect_complete=*/true);
}

TEST(CrossEngine, CjzBatchSendVolumesAgree) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  compare_batch_metric(spec, 48, 0.0, 300, 24, 0.35,
                       [](const SimResult& r) { return double(r.total_sends); },
                       /*expect_complete=*/false);
}

TEST(CrossEngine, CjzUnderJammingAgrees) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  compare_batch_metric(spec, 32, 0.25, 500, 20, 0.4,
                       [](const SimResult& r) { return double(r.last_success); },
                       /*expect_complete=*/false);
}

TEST(CrossEngine, HdataBatchAgrees) {
  // h_data completion has a truncated-Pareto tail (the lone-survivor phase),
  // so means of last_success are horizon-dominated and noisy. Compare a
  // concentrated statistic instead: successes within a fixed window.
  const ProtocolSpec spec = profile_protocol(profiles::h_data());
  ASSERT_FALSE(candidates(spec).empty());
  const std::uint64_t n = 64;
  const int reps = 24;
  const slot_t window = 4096;
  auto run_windowed = [&](const Engine& engine, std::uint64_t s) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = window;
    cfg.seed = s;
    return engine.run(spec, adv, cfg);
  };
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs =
      replicate(reps, 700, [&](std::uint64_t s) { return run_windowed(reference, s); });
  const auto m_ref =
      collect(ref_runs, [](const SimResult& r) { return double(r.successes); });
  for (const Engine* engine : candidates(spec)) {
    const auto runs =
        replicate(reps, 700, [&](std::uint64_t s) { return run_windowed(*engine, s); });
    const auto m_eng = collect(runs, [](const SimResult& r) { return double(r.successes); });
    EXPECT_LT(std::abs(m_ref.mean() - m_eng.mean()),
              0.15 * std::max(m_ref.mean(), m_eng.mean()) + 1.0)
        << "engine=" << engine->name() << " reference=" << m_ref.mean()
        << " candidate=" << m_eng.mean();
  }
}

TEST(CrossEngine, DynamicArrivalFirstSuccessAgrees) {
  const ProtocolSpec spec = cjz_protocol(functions_constant_g(4.0));
  const int reps = 24;
  auto run_one = [&](const Engine& engine, std::uint64_t s) {
    ComposedAdversary adv(bernoulli_arrivals(0.01, 1, 5000), no_jam());
    SimConfig cfg;
    cfg.horizon = 20'000;
    cfg.seed = s;
    return engine.run(spec, adv, cfg);
  };
  const Engine& reference = EngineRegistry::instance().at(kReference);
  const auto ref_runs =
      replicate(reps, 900, [&](std::uint64_t s) { return run_one(reference, s); });
  const auto s_ref =
      collect(ref_runs, [](const SimResult& r) { return double(r.successes); });
  for (const Engine* engine : candidates(spec)) {
    const auto runs =
        replicate(reps, 900, [&](std::uint64_t s) { return run_one(*engine, s); });
    const auto s_eng = collect(runs, [](const SimResult& r) { return double(r.successes); });
    EXPECT_LT(std::abs(s_ref.mean() - s_eng.mean()),
              0.25 * std::max(s_ref.mean(), s_eng.mean()) + 2.0)
        << "engine=" << engine->name();
  }
}

}  // namespace
}  // namespace cr
