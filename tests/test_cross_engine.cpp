// Cross-validation: the fast cohort engines must be statistically
// indistinguishable from the generic reference engine on the same scenarios.
// Exact trajectory coupling is impossible (different rng consumption), so we
// compare distribution summaries over many seeds with wide tolerances —
// deterministic, but sensitive to real semantic divergence.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

SimResult run_cjz_generic_batch(std::uint64_t n, double jam, std::uint64_t seed) {
  CjzFactory factory(functions_constant_g(4.0));
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 400'000;
  cfg.seed = seed;
  cfg.stop_when_empty = true;
  return run_generic(factory, adv, cfg);
}

SimResult run_cjz_fast_batch(std::uint64_t n, double jam, std::uint64_t seed) {
  FunctionSet fs = functions_constant_g(4.0);
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = 400'000;
  cfg.seed = seed;
  cfg.stop_when_empty = true;
  return run_fast_cjz(fs, adv, cfg);
}

TEST(CrossEngine, CjzBatchCompletionTimesAgree) {
  const std::uint64_t n = 48;
  const int reps = 24;
  const auto gen = replicate(reps, 100, [&](std::uint64_t s) {
    return run_cjz_generic_batch(n, 0.0, s);
  });
  const auto fast = replicate(reps, 100, [&](std::uint64_t s) {
    return run_cjz_fast_batch(n, 0.0, s);
  });
  for (const auto& r : gen) ASSERT_EQ(r.successes, n);
  for (const auto& r : fast) ASSERT_EQ(r.successes, n);
  const auto m_gen = collect(gen, [](const SimResult& r) { return double(r.last_success); });
  const auto m_fast = collect(fast, [](const SimResult& r) { return double(r.last_success); });
  // Means within 35% of each other (generous; catches systematic drift).
  EXPECT_LT(std::abs(m_gen.mean() - m_fast.mean()), 0.35 * std::max(m_gen.mean(), m_fast.mean()))
      << "generic=" << m_gen.mean() << " fast=" << m_fast.mean();
}

TEST(CrossEngine, CjzBatchSendVolumesAgree) {
  const std::uint64_t n = 48;
  const int reps = 24;
  const auto gen = replicate(reps, 300, [&](std::uint64_t s) {
    return run_cjz_generic_batch(n, 0.0, s);
  });
  const auto fast = replicate(reps, 300, [&](std::uint64_t s) {
    return run_cjz_fast_batch(n, 0.0, s);
  });
  const auto m_gen = collect(gen, [](const SimResult& r) { return double(r.total_sends); });
  const auto m_fast = collect(fast, [](const SimResult& r) { return double(r.total_sends); });
  EXPECT_LT(std::abs(m_gen.mean() - m_fast.mean()), 0.35 * std::max(m_gen.mean(), m_fast.mean()))
      << "generic=" << m_gen.mean() << " fast=" << m_fast.mean();
}

TEST(CrossEngine, CjzUnderJammingAgrees) {
  const std::uint64_t n = 32;
  const int reps = 20;
  const auto gen = replicate(reps, 500, [&](std::uint64_t s) {
    return run_cjz_generic_batch(n, 0.25, s);
  });
  const auto fast = replicate(reps, 500, [&](std::uint64_t s) {
    return run_cjz_fast_batch(n, 0.25, s);
  });
  const auto m_gen = collect(gen, [](const SimResult& r) { return double(r.last_success); });
  const auto m_fast = collect(fast, [](const SimResult& r) { return double(r.last_success); });
  EXPECT_LT(std::abs(m_gen.mean() - m_fast.mean()), 0.4 * std::max(m_gen.mean(), m_fast.mean()));
}

TEST(CrossEngine, HdataBatchAgrees) {
  // h_data completion has a truncated-Pareto tail (the lone-survivor phase),
  // so means of last_success are horizon-dominated and noisy. Compare a
  // concentrated statistic instead: successes within a fixed window.
  const std::uint64_t n = 64;
  const int reps = 24;
  const slot_t window = 4096;
  const auto gen = replicate(reps, 700, [&](std::uint64_t s) {
    ProfileProtocolFactory factory(profiles::h_data());
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = window;
    cfg.seed = s;
    return run_generic(factory, adv, cfg);
  });
  const auto fast = replicate(reps, 700, [&](std::uint64_t s) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = window;
    cfg.seed = s;
    return run_fast_batch(profiles::h_data(), adv, cfg);
  });
  const auto m_gen = collect(gen, [](const SimResult& r) { return double(r.successes); });
  const auto m_fast = collect(fast, [](const SimResult& r) { return double(r.successes); });
  EXPECT_LT(std::abs(m_gen.mean() - m_fast.mean()),
            0.15 * std::max(m_gen.mean(), m_fast.mean()) + 1.0)
      << "generic=" << m_gen.mean() << " fast=" << m_fast.mean();
}

TEST(CrossEngine, DynamicArrivalFirstSuccessAgrees) {
  const int reps = 24;
  auto run_one = [&](bool fast_engine, std::uint64_t s) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(bernoulli_arrivals(0.01, 1, 5000), no_jam());
    SimConfig cfg;
    cfg.horizon = 20'000;
    cfg.seed = s;
    if (fast_engine) return run_fast_cjz(fs, adv, cfg);
    CjzFactory factory(fs);
    return run_generic(factory, adv, cfg);
  };
  const auto gen = replicate(reps, 900, [&](std::uint64_t s) { return run_one(false, s); });
  const auto fast = replicate(reps, 900, [&](std::uint64_t s) { return run_one(true, s); });
  const auto s_gen = collect(gen, [](const SimResult& r) { return double(r.successes); });
  const auto s_fast = collect(fast, [](const SimResult& r) { return double(r.successes); });
  EXPECT_LT(std::abs(s_gen.mean() - s_fast.mean()),
            0.25 * std::max(s_gen.mean(), s_fast.mean()) + 2.0);
}

}  // namespace
}  // namespace cr
