// Unit tests for the RNG substrate: determinism, ranges, and distribution
// moments (loose statistical tolerances with fixed seeds — deterministic).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "common/stream_tags.hpp"

namespace cr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, AdjacentSeedsAreDecorrelated) {
  // splitmix64 seeding should make streams from seeds k and k+1 independent;
  // check the leading bits disagree about half the time.
  Rng a(1000), b(1001);
  int agree = 0;
  const int kTrials = 4096;
  for (int i = 0; i < kTrials; ++i)
    if ((a.next_u64() >> 63) == (b.next_u64() >> 63)) ++agree;
  EXPECT_NEAR(static_cast<double>(agree) / kTrials, 0.5, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  Rng f1b = a.fork(1);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64()) << "fork must be deterministic";
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(11);
  for (std::uint64_t n : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_u64(n), n);
  }
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformU64RoughlyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(10)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.uniform_range(3, 3), 3);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliMean) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(31);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
};

class BinomialMoments : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialMoments, MeanAndVarianceMatch) {
  const auto [n, p] = GetParam();
  Rng rng(37 + n);
  const int trials = 20000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < trials; ++i) {
    const auto x = static_cast<double>(rng.binomial(n, p));
    EXPECT_LE(x, static_cast<double>(n));
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / trials;
  const double var = sumsq / trials - mean * mean;
  const double expect_mean = static_cast<double>(n) * p;
  const double expect_var = expect_mean * (1.0 - p);
  EXPECT_NEAR(mean, expect_mean, 0.05 * expect_mean + 0.1);
  EXPECT_NEAR(var, expect_var, 0.15 * expect_var + 0.3);
}

INSTANTIATE_TEST_SUITE_P(SmallLargeRegimes, BinomialMoments,
                         ::testing::Values(BinomialCase{10, 0.5},        // coin-by-coin
                                           BinomialCase{64, 0.25},       // boundary
                                           BinomialCase{1000, 0.01},     // inversion
                                           BinomialCase{5000, 0.002},    // inversion, tiny p
                                           BinomialCase{100000, 0.01},   // normal approx
                                           BinomialCase{1 << 20, 0.001},  // normal approx
                                           BinomialCase{500, 0.9}));     // symmetry branch

TEST(Rng, GeometricMean) {
  Rng rng(41);
  const double p = 0.2;
  const int trials = 50000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += static_cast<double>(rng.geometric(p));
  // E[failures before success] = (1-p)/p = 4.
  EXPECT_NEAR(sum / trials, 4.0, 0.15);
}

TEST(Rng, GeometricCertain) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Rng, Normal01Moments) {
  Rng rng(47);
  const int n = 100000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal01();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, SeedAccessor) {
  Rng rng(999);
  EXPECT_EQ(rng.seed(), 999u);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}

// ---------------------------------------------------------------------------
// CounterRng — the counter-based substrate the lockstep engine runs on.

TEST(CounterRng, AtMatchesStreamSequence) {
  // stream(hi) is a sequential cursor over at(hi, 0), at(hi, 1), ... — the
  // core counter-substrate contract: draw order carries no state.
  const CounterRng rng(0xC0FFEEu);
  for (const std::uint64_t hi : {0ull, 1ull, 77ull, 1ull << 40}) {
    auto stream = rng.stream(hi);
    for (std::uint64_t i = 0; i < 64; ++i)
      ASSERT_EQ(stream(), rng.at(hi, i)) << "hi=" << hi << " index=" << i;
    EXPECT_EQ(stream.index(), 64u);
  }
}

TEST(CounterRng, AtIsOrderIndependent) {
  // Reading positions backwards (or any order) gives the same words as
  // reading forwards; at() is a pure function of (key, hi, index).
  const CounterRng rng(42);
  std::vector<std::uint64_t> forward;
  for (std::uint64_t i = 0; i < 100; ++i) forward.push_back(rng.at(9, i));
  for (std::uint64_t i = 100; i-- > 0;) EXPECT_EQ(rng.at(9, i), forward[i]);
}

TEST(CounterRng, DeterministicAcrossInstances) {
  const CounterRng a(123), b(123);
  EXPECT_EQ(a.key(), b.key());
  for (std::uint64_t i = 0; i < 32; ++i) EXPECT_EQ(a.at(5, i), b.at(5, i));
}

TEST(CounterRng, ForkMatchesRngForkSeed) {
  // Both substrates share rng_detail::fork_seed, so a (seed, tag) pair names
  // the same logical stream on either — including chained forks. This is
  // what lets the lockstep engine reuse the sequential engines' tags.
  for (const std::uint64_t seed : {1ull, 999ull, 0x9e3779b97f4a7c15ull}) {
    for (const std::uint64_t tag : streams::kAllTags) {
      EXPECT_EQ(Rng(seed).fork(tag).seed(), CounterRng(seed).fork(tag).key());
      EXPECT_EQ(Rng(seed).fork(tag).fork(streams::kArrival).seed(),
                CounterRng(seed).fork(tag).fork(streams::kArrival).key());
    }
  }
}

TEST(CounterRng, StreamTagsAreUnique) {
  // Two streams sharing a tag under one seed would be identical — silently
  // correlated draws. The shared header centralises the tags; this test is
  // the tripwire a new tag must pass (add it to streams::kAllTags).
  std::set<std::uint64_t> tags(streams::kAllTags.begin(), streams::kAllTags.end());
  EXPECT_EQ(tags.size(), streams::kAllTags.size());
  // And the forked keys they induce are pairwise distinct too.
  std::set<std::uint64_t> keys;
  for (const std::uint64_t tag : streams::kAllTags)
    keys.insert(CounterRng(7).fork(tag).key());
  EXPECT_EQ(keys.size(), streams::kAllTags.size());
}

TEST(CounterRng, DistinctHiCountersDecorrelated) {
  // Adjacent hi counters (slots, in the lockstep engine) must behave as
  // independent streams: leading bits agree about half the time.
  const CounterRng rng(2026);
  int agree = 0;
  const int kTrials = 4096;
  for (int i = 0; i < kTrials; ++i)
    if ((rng.at(static_cast<std::uint64_t>(i), 0) >> 63) ==
        (rng.at(static_cast<std::uint64_t>(i) + 1, 0) >> 63))
      ++agree;
  EXPECT_NEAR(static_cast<double>(agree) / kTrials, 0.5, 0.05);
}

TEST(CounterRng, StreamUniform01Mean) {
  auto stream = CounterRng(11).stream(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = stream.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(CounterRng, StreamBinomialMean) {
  // The distribution methods delegate to the same rng_detail templates Rng
  // uses; one moment check over fresh per-hi streams confirms the plumbing.
  const CounterRng rng(17);
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto stream = rng.stream(static_cast<std::uint64_t>(i));
    sum += static_cast<double>(stream.binomial(1000, 0.3));
  }
  EXPECT_NEAR(sum / n, 300.0, 3.0);
}

// ---------------------------------------------------------------------------
// Batched draws — every block API must be bit-identical to the scalar loop
// it replaces. The lockstep plan path's exactness contract rests on these.

TEST(RngBatch, FillMatchesSequentialDraws) {
  // fill(out, n) == n next_u64() calls, and the state afterwards continues
  // the same sequence — checked across sizes including 0 and odd lengths.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    Rng scalar(0xABCDEFu);
    Rng batched(0xABCDEFu);
    std::vector<std::uint64_t> out(n + 1, 0);
    batched.fill(out.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(out[i], scalar.next_u64()) << "n=" << n << " i=" << i;
    EXPECT_EQ(batched.next_u64(), scalar.next_u64()) << "state diverged after fill(" << n << ")";
  }
}

TEST(RngBatch, SkipMatchesDiscardedDraws) {
  for (const std::uint64_t n : {0ull, 1ull, 13ull, 4096ull}) {
    Rng scalar(99);
    Rng skipped(99);
    for (std::uint64_t i = 0; i < n; ++i) scalar.next_u64();
    skipped.skip(n);
    EXPECT_EQ(skipped.next_u64(), scalar.next_u64()) << "n=" << n;
  }
}

TEST(CounterRngBatch, FillMatchesAt) {
  // CounterRng::fill over any (start, n) window — even/odd starts and block
  // boundaries — equals the at() values position by position.
  const CounterRng rng(0xFEEDu);
  const std::uint64_t hi = 31;
  for (const std::uint64_t start : {0ull, 1ull, 2ull, 7ull, 127ull}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{5}, std::size_t{64},
                                std::size_t{65}}) {
      std::vector<std::uint64_t> out(n + 1, 0xDEADull);
      rng.fill(hi, start, out.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], rng.at(hi, start + i)) << "start=" << start << " n=" << n
                                                 << " i=" << i;
      EXPECT_EQ(out[n], 0xDEADull) << "fill wrote past n";
    }
  }
}

TEST(CounterRngBatch, StreamFillMatchesScalarCursor) {
  // Stream::fill from any cursor parity, then a scalar draw: the whole
  // interleaving must replay the pure at() sequence (spare re-derivation
  // after an odd landing index included).
  const CounterRng rng(505);
  for (const std::uint64_t warmup : {0ull, 1ull, 2ull, 3ull}) {
    auto stream = rng.stream(9);
    std::uint64_t index = 0;
    for (std::uint64_t i = 0; i < warmup; ++i, ++index) ASSERT_EQ(stream(), rng.at(9, index));
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{8}}) {
      std::vector<std::uint64_t> out(n, 0);
      stream.fill(out.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], rng.at(9, index + i)) << "warmup=" << warmup << " n=" << n;
      index += n;
      ASSERT_EQ(stream(), rng.at(9, index)) << "scalar draw after fill diverged";
      ++index;
    }
    EXPECT_EQ(stream.index(), index);
  }
}

TEST(CounterRngBatch, StreamSkipKeepsAlignment) {
  // skip() consumes words without materialising them; landing on an odd
  // index must still produce the right second-of-block word next.
  const CounterRng rng(77);
  for (const std::uint64_t n : {0ull, 1ull, 2ull, 3ull, 9ull}) {
    auto stream = rng.stream(4);
    ASSERT_EQ(stream(), rng.at(4, 0));
    stream.skip(n);
    EXPECT_EQ(stream(), rng.at(4, 1 + n)) << "n=" << n;
  }
}

TEST(CounterRngBatch, StreamBinomialMatchesTemplateEverywhere) {
  // Stream::binomial's batched coin branch and flip handling must agree
  // with rng_detail::binomial on BOTH the value and the number of words
  // consumed, in every branch: degenerate (n=0, p<=0, p>=1), coin-by-coin
  // (n<=64), flipped coin-by-coin (p>0.5), BINV inversion (n>64, small
  // mean), flipped BINV, and the clamped-normal branch (large mean).
  struct Case {
    std::uint64_t n;
    double p;
  };
  const Case cases[] = {{0, 0.5},    {10, 0.0},   {10, -1.0},  {10, 1.0},  {10, 2.0},
                        {1, 0.5},    {64, 0.25},  {64, 0.75},  {500, 0.01}, {500, 0.99},
                        {10000, 0.001}, {10000, 0.999}, {100000, 0.4}, {100000, 0.6}};
  const CounterRng rng(0xB10Bu);
  std::uint64_t hi = 0;
  for (const Case& c : cases) {
    ++hi;
    auto batched = rng.stream(hi);
    auto scalar = rng.stream(hi);
    const std::uint64_t got = batched.binomial(c.n, c.p);
    const std::uint64_t want = rng_detail::binomial(scalar, c.n, c.p);
    EXPECT_EQ(got, want) << "n=" << c.n << " p=" << c.p;
    EXPECT_EQ(batched.index(), scalar.index())
        << "word consumption diverged at n=" << c.n << " p=" << c.p;
  }
}

TEST(CounterRngBatch, FillKeysMatchesPerKeyAt) {
  // fill_keys sweeps one (hi, index) position across a replication axis of
  // keys; each lane must equal the key's own at() — including r == 0.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t s = 0; s < 37; ++s) keys.push_back(CounterRng(1000 + s).key());
  for (const std::size_t r : {std::size_t{0}, std::size_t{1}, std::size_t{5}, keys.size()}) {
    for (const std::uint64_t index : {0ull, 1ull, 6ull, 7ull}) {
      std::vector<std::uint64_t> out(r + 1, 0xDEADull);
      CounterRng::fill_keys(keys.data(), r, 3, index, out.data());
      for (std::size_t i = 0; i < r; ++i)
        ASSERT_EQ(out[i], CounterRng(keys[i]).at(3, index)) << "r=" << r << " i=" << i;
      EXPECT_EQ(out[r], 0xDEADull);
    }
  }
}

TEST(CounterRngBatch, FillKeysUnitMatchesUniform01Mapping) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t s = 0; s < 19; ++s) keys.push_back(CounterRng(7 * s + 1).key());
  std::vector<double> out(keys.size(), -1.0);
  CounterRng::fill_keys_unit(keys.data(), keys.size(), 12, 4, out.data());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t w = CounterRng(keys[i]).at(12, 4);
    ASSERT_EQ(out[i], static_cast<double>(w >> 11) * 0x1.0p-53) << "i=" << i;
  }
}

TEST(CounterRngBatch, BinomialKeysMatchesScalarStreams) {
  // binomial_keys hoists the branch classification out of the replication
  // loop; every lane must still equal the key's own scalar stream.binomial —
  // across all branches and the edge parameters.
  struct Case {
    std::uint64_t n;
    double p;
  };
  const Case cases[] = {{0, 0.3},   {12, 0.0},  {12, 1.0},  {40, 0.2},  {40, 0.8},
                        {300, 0.02}, {300, 0.98}, {50000, 0.3}, {50000, 0.7}};
  std::vector<std::uint64_t> keys;
  for (std::uint64_t s = 0; s < 33; ++s) keys.push_back(CounterRng(0x5EED + s).key());
  std::uint64_t hi = 100;
  for (const Case& c : cases) {
    ++hi;
    std::vector<std::uint64_t> out(keys.size(), 0xDEADull);
    CounterRng::binomial_keys(keys.data(), keys.size(), hi, c.n, c.p, out.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto stream = CounterRng(keys[i]).stream(hi);
      ASSERT_EQ(out[i], stream.binomial(c.n, c.p)) << "n=" << c.n << " p=" << c.p
                                                   << " i=" << i;
    }
  }
  // r == 0 is a no-op, not a crash.
  CounterRng::binomial_keys(keys.data(), 0, hi, 10, 0.5, nullptr);
}

}  // namespace
}  // namespace cr
