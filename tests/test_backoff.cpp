// Unit tests for the h-backoff subroutine: stage geometry, per-stage send
// counts, and adaptivity (fresh draws per stage).
#include <gtest/gtest.h>

#include <vector>

#include "common/functions.hpp"
#include "common/rng.hpp"
#include "protocols/backoff.hpp"

namespace cr {
namespace {

FunctionSet make_fs(double gamma = 4.0, double cf = 1.0) {
  FunctionSet fs;
  fs.g = fn::constant(gamma);
  fs.cf = cf;
  return fs;
}

TEST(Backoff, StageZeroAlwaysSends) {
  // Stage 0 has length 1 and h >= 1, so the very first virtual slot must
  // transmit — this is what makes a lone node succeed fast.
  const FunctionSet fs = make_fs();
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    BackoffProcess bp(&fs);
    EXPECT_TRUE(bp.step(rng)) << "seed " << seed;
  }
}

TEST(Backoff, StageGeometryDoubles) {
  const FunctionSet fs = make_fs();
  Rng rng(3);
  BackoffProcess bp(&fs);
  // Virtual slots: stage k covers [2^k - 1, 2^{k+1} - 1).
  std::vector<std::uint64_t> expected_stage;
  for (std::uint64_t v = 0; v < 127; ++v) {
    std::uint64_t k = 0;
    while ((2ull << k) - 1 <= v) ++k;
    expected_stage.push_back(k);
  }
  for (std::uint64_t v = 0; v < 127; ++v) {
    bp.step(rng);
    EXPECT_EQ(bp.stage(), expected_stage[v]) << "vslot " << v;
    EXPECT_EQ(bp.stage_length(), 1ull << expected_stage[v]);
  }
}

TEST(Backoff, SendsPerStageMatchesH) {
  const FunctionSet fs = make_fs(4.0, 8.0);  // cf=8 so stages want several sends
  Rng rng(5);
  BackoffProcess bp(&fs);
  // Walk full stages and count sends per stage.
  std::uint64_t vslot = 0;
  for (std::uint64_t k = 0; k <= 12; ++k) {
    const std::uint64_t len = 1ull << k;
    std::uint64_t sends = 0;
    for (std::uint64_t i = 0; i < len; ++i, ++vslot) sends += bp.step(rng) ? 1 : 0;
    const unsigned want = fs.backoff_sends(len);
    EXPECT_GE(sends, 1u) << "stage " << k;
    EXPECT_LE(sends, want) << "stage " << k << " (duplicates collapse)";
    // With replacement, the expected number of distinct draws is close to
    // `want` for len >> want; allow slack of half.
    if (len >= 8 * want) { EXPECT_GE(sends, (want + 1) / 2) << "stage " << k; }
  }
}

TEST(Backoff, TotalSendsAccumulate) {
  const FunctionSet fs = make_fs();
  Rng rng(7);
  BackoffProcess bp(&fs);
  std::uint64_t manual = 0;
  for (int i = 0; i < 4095; ++i) manual += bp.step(rng) ? 1 : 0;
  EXPECT_EQ(bp.total_sends(), manual);
  EXPECT_EQ(bp.virtual_slots(), 4095u);
}

TEST(Backoff, ResetRestartsFromStageZero) {
  const FunctionSet fs = make_fs();
  Rng rng(11);
  BackoffProcess bp(&fs);
  for (int i = 0; i < 100; ++i) bp.step(rng);
  EXPECT_GT(bp.stage(), 0u);
  bp.reset();
  EXPECT_EQ(bp.virtual_slots(), 0u);
  EXPECT_EQ(bp.total_sends(), 0u);
  EXPECT_TRUE(bp.step(rng)) << "stage 0 sends after reset";
  EXPECT_EQ(bp.stage(), 0u);
}

TEST(Backoff, AdaptiveRedrawPerStage) {
  // Two processes with identical parameters but different rngs must diverge
  // in their send patterns (the schedule is drawn, not fixed).
  const FunctionSet fs = make_fs(4.0, 8.0);
  Rng r1(1), r2(2);
  BackoffProcess a(&fs), b(&fs);
  int diff = 0;
  for (int i = 0; i < 2047; ++i)
    if (a.step(r1) != b.step(r2)) ++diff;
  EXPECT_GT(diff, 0);
}

TEST(Backoff, SendDensityDecays) {
  // Over stage k the send rate is ~h(2^k)/2^k -> the total send count over
  // the first T vslots is O(f(T) log T), far below T.
  const FunctionSet fs = make_fs();
  Rng rng(13);
  BackoffProcess bp(&fs);
  const std::uint64_t T = 1 << 16;
  for (std::uint64_t i = 0; i < T; ++i) bp.step(rng);
  const double fT = fs.f(static_cast<double>(T));
  EXPECT_LT(static_cast<double>(bp.total_sends()), 4.0 * fT * 17.0)
      << "sends should be O(f(T)·log T)";
  EXPECT_GE(bp.total_sends(), 17u) << "at least one send per stage";
}

class BackoffStageSweep : public ::testing::TestWithParam<int> {};

TEST_P(BackoffStageSweep, OffsetsStayInsideStage) {
  // Indirect check: run through stage k and verify no send occurs outside
  // once the stage's budget is exhausted (monotone next_offset scan).
  const FunctionSet fs = make_fs(4.0, 4.0);
  Rng rng(100 + GetParam());
  BackoffProcess bp(&fs);
  const std::uint64_t upto = (2ull << GetParam()) - 1;
  std::uint64_t sends = 0;
  for (std::uint64_t v = 0; v < upto; ++v) sends += bp.step(rng) ? 1 : 0;
  std::uint64_t budget = 0;
  for (int k = 0; k <= GetParam(); ++k) budget += fs.backoff_sends(1ull << k);
  EXPECT_LE(sends, budget);
  EXPECT_GE(sends, static_cast<std::uint64_t>(GetParam()) + 1);  // >=1 per stage
}

INSTANTIATE_TEST_SUITE_P(Stages, BackoffStageSweep, ::testing::Range(0, 14));

}  // namespace
}  // namespace cr
