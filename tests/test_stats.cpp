// Unit tests for the statistics toolkit.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hpp"

namespace cr {
namespace {

TEST(Accumulator, Empty) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownValues) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SingleValueVarianceZero) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Quantiles, NearestRank) {
  Quantiles q;
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) q.add(x);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.21), 2.0);
}

TEST(Quantiles, AddAfterQuery) {
  Quantiles q;
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  q.add(1.0);
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.median(), 2.0);
  EXPECT_DOUBLE_EQ(q.max(), 3.0);
}

TEST(Quantiles, EmptySampleReturnsZeroForEveryQ) {
  const Quantiles q;
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q.median(), 0.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(q.max(), 0.0);
}

TEST(Quantiles, SingleSampleIsEveryQuantile) {
  Quantiles q;
  q.add(7.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.01), 7.5);
  EXPECT_DOUBLE_EQ(q.median(), 7.5);
  EXPECT_DOUBLE_EQ(q.quantile(0.99), 7.5);
  EXPECT_DOUBLE_EQ(q.max(), 7.5);
}

TEST(Quantiles, P99OnTinySamplesIsNotTheMax) {
  // Nearest rank: over 100 samples, p99 is the 99th order statistic — the
  // naive ceil(0.99·100) = ceil(99.00000000000001) = 100 off-by-one (IEEE
  // representation of 0.99) used to return the maximum instead.
  Quantiles q;
  for (int i = 1; i <= 100; ++i) q.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(q.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.01), 1.0);
}

TEST(Quantiles, TinySampleTailBehaviour) {
  // n=2: p99 lands on the 2nd order statistic, p50 on the 1st.
  Quantiles two;
  two.add(10.0);
  two.add(20.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(two.quantile(0.99), 20.0);
  // n=3: ranks ceil(3q) = 2 (median), 3 (p99).
  Quantiles three;
  for (double x : {30.0, 10.0, 20.0}) three.add(x);
  EXPECT_DOUBLE_EQ(three.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(three.quantile(0.99), 30.0);
  // Exact rank boundaries stay exact: q = 1/3 is the 1st order statistic.
  EXPECT_DOUBLE_EQ(three.quantile(1.0 / 3.0), 10.0);
}

TEST(Summary, FromAccumulator) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(2.0);
  const Summary s = summarize("metric", acc);
  EXPECT_EQ(s.name, "metric");
  EXPECT_DOUBLE_EQ(s.mean, 1.5);
  EXPECT_EQ(s.n, 2u);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-10);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-10);
}

TEST(LinearFit, NoisyLineStillClose) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFit, DegenerateXs) {
  const LinearFit fit = fit_linear({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace cr
