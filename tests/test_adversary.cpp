// Unit tests for arrival processes, jammers and the scripted proof
// adversaries: schedules, budgets and adaptivity behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "adversary/proof_adversaries.hpp"
#include "channel/channel.hpp"
#include "channel/trace.hpp"
#include "exp/scenarios.hpp"

namespace cr {
namespace {

/// Drives an arrival/jammer over `slots` slots against an all-silent
/// history; returns cumulative counts per slot.
struct Driver {
  Trace trace;
  PublicHistory hist{trace};
  Rng rng{99};

  void advance_silent(slot_t s) { trace.record(resolve_slot(s, 0, false, kNoNode)); }
  void advance_success(slot_t s, node_id who) { trace.record(resolve_slot(s, 1, false, who)); }
};

TEST(Arrivals, BatchFiresOnce) {
  auto arr = batch_arrival(50, 3);
  Driver d;
  std::uint64_t total = 0;
  for (slot_t s = 1; s <= 10; ++s) {
    const auto k = arr->arrivals(s, d.hist, d.rng);
    if (s == 3) {
      EXPECT_EQ(k, 50u);
    } else {
      EXPECT_EQ(k, 0u);
    }
    total += k;
    d.advance_silent(s);
  }
  EXPECT_EQ(total, 50u);
}

TEST(Arrivals, ScheduledMergesDuplicates) {
  auto arr = scheduled_arrivals({{2, 3}, {2, 4}, {5, 1}});
  Driver d;
  EXPECT_EQ(arr->arrivals(2, d.hist, d.rng), 7u);
  EXPECT_EQ(arr->arrivals(5, d.hist, d.rng), 1u);
  EXPECT_EQ(arr->arrivals(3, d.hist, d.rng), 0u);
}

TEST(Arrivals, BernoulliRateApproximate) {
  auto arr = bernoulli_arrivals(0.25, 1, 100000);
  Driver d;
  std::uint64_t total = 0;
  for (slot_t s = 1; s <= 100000; ++s) total += arr->arrivals(s, d.hist, d.rng);
  EXPECT_NEAR(static_cast<double>(total) / 100000.0, 0.25, 0.01);
}

TEST(Arrivals, BernoulliRateAboveOne) {
  auto arr = bernoulli_arrivals(2.5, 1, 10000);
  Driver d;
  std::uint64_t total = 0;
  for (slot_t s = 1; s <= 10000; ++s) {
    const auto k = arr->arrivals(s, d.hist, d.rng);
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 3u);
    total += k;
  }
  EXPECT_NEAR(static_cast<double>(total) / 10000.0, 2.5, 0.05);
}

TEST(Arrivals, BernoulliRespectsWindow) {
  auto arr = bernoulli_arrivals(1.0, 10, 20);
  Driver d;
  EXPECT_EQ(arr->arrivals(9, d.hist, d.rng), 0u);
  EXPECT_EQ(arr->arrivals(10, d.hist, d.rng), 1u);
  EXPECT_EQ(arr->arrivals(20, d.hist, d.rng), 1u);
  EXPECT_EQ(arr->arrivals(21, d.hist, d.rng), 0u);
}

TEST(Arrivals, UniformRandomTotalExact) {
  auto arr = uniform_random_arrivals(500, 1000, 7);
  Driver d;
  std::uint64_t total = 0;
  for (slot_t s = 1; s <= 1000; ++s) total += arr->arrivals(s, d.hist, d.rng);
  EXPECT_EQ(total, 500u);
}

TEST(Arrivals, UniformRandomDeterministicInSeed) {
  auto a1 = uniform_random_arrivals(100, 1000, 5);
  auto a2 = uniform_random_arrivals(100, 1000, 5);
  Driver d;
  for (slot_t s = 1; s <= 1000; ++s)
    EXPECT_EQ(a1->arrivals(s, d.hist, d.rng), a2->arrivals(s, d.hist, d.rng));
}

TEST(Arrivals, PacedTracksTarget) {
  FunctionSet fs = functions_constant_g(4.0);
  const double margin = 4.0;
  auto arr = paced_arrivals(fs, margin);
  Driver d;
  std::uint64_t n_t = 0;
  for (slot_t s = 1; s <= 50000; ++s) {
    n_t += arr->arrivals(s, d.hist, d.rng);
    const double target = static_cast<double>(s) / (margin * fs.f(static_cast<double>(s)));
    EXPECT_LE(static_cast<double>(n_t), target + 1.0) << "slot " << s;
  }
  // And it should not be far below the target either.
  const double final_target = 50000.0 / (margin * fs.f(50000.0));
  EXPECT_GT(static_cast<double>(n_t), 0.9 * final_target);
}

TEST(Arrivals, BurstyPattern) {
  auto arr = bursty_arrivals(10, 5, 1, 100);
  Driver d;
  EXPECT_EQ(arr->arrivals(1, d.hist, d.rng), 5u);
  EXPECT_EQ(arr->arrivals(2, d.hist, d.rng), 0u);
  EXPECT_EQ(arr->arrivals(11, d.hist, d.rng), 5u);
  EXPECT_EQ(arr->arrivals(101, d.hist, d.rng), 0u);
}

TEST(Jammers, NoJamNeverJams) {
  auto j = no_jam();
  Driver d;
  for (slot_t s = 1; s <= 100; ++s) EXPECT_FALSE(j->jams(s, d.hist, d.rng));
}

TEST(Jammers, PrefixExact) {
  auto j = prefix_jammer(10);
  Driver d;
  for (slot_t s = 1; s <= 30; ++s) EXPECT_EQ(j->jams(s, d.hist, d.rng), s <= 10);
}

TEST(Jammers, IidFraction) {
  auto j = iid_jammer(0.3);
  Driver d;
  std::uint64_t jams = 0;
  for (slot_t s = 1; s <= 100000; ++s) jams += j->jams(s, d.hist, d.rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(jams) / 100000.0, 0.3, 0.01);
}

TEST(Jammers, PeriodicPattern) {
  auto j = periodic_jammer(5, 2);
  Driver d;
  for (slot_t s = 1; s <= 20; ++s) {
    const bool expect = ((s - 1) % 5) < 2;
    EXPECT_EQ(j->jams(s, d.hist, d.rng), expect) << "slot " << s;
  }
}

TEST(Jammers, BudgetPacedRespectsEnvelope) {
  const GrowthFn g = fn::constant(4.0);
  const double margin = 2.0;
  auto j = budget_paced_jammer(g, margin);
  Driver d;
  std::uint64_t d_t = 0;
  for (slot_t s = 1; s <= 20000; ++s) {
    d_t += j->jams(s, d.hist, d.rng) ? 1 : 0;
    EXPECT_LE(static_cast<double>(d_t), static_cast<double>(s) / (margin * 4.0) + 1.0);
  }
  EXPECT_GT(d_t, 2000u);  // it does spend the budget
}

TEST(Jammers, ReactiveOnlyAfterSuccess) {
  auto j = reactive_jammer(fn::constant(2.0), 2.0, 2);
  Driver d;
  // No successes yet: never jams.
  for (slot_t s = 1; s <= 50; ++s) {
    EXPECT_FALSE(j->jams(s, d.hist, d.rng));
    d.advance_silent(s);
  }
  d.advance_success(51, 3);
  EXPECT_TRUE(j->jams(52, d.hist, d.rng));
  EXPECT_TRUE(j->jams(53, d.hist, d.rng));
  EXPECT_FALSE(j->jams(54, d.hist, d.rng));  // burst exhausted
}

TEST(Composed, CombinesBoth) {
  ComposedAdversary adv(batch_arrival(3, 1), prefix_jammer(2));
  Driver d;
  const AdversaryAction a1 = adv.on_slot(1, d.hist, d.rng);
  EXPECT_EQ(a1.inject, 3u);
  EXPECT_TRUE(a1.jam);
  d.advance_silent(1);
  const AdversaryAction a3 = adv.on_slot(3, d.hist, d.rng);
  EXPECT_EQ(a3.inject, 0u);
  EXPECT_FALSE(a3.jam);
  EXPECT_NE(adv.name().find("batch"), std::string::npos);
}

TEST(ProofAdversaries, Theorem42Shape) {
  FunctionSet fs = functions_constant_g(4.0);
  const slot_t t = 1 << 12;
  auto adv = theorem42_adversary(t, fs);
  Driver d;
  const slot_t prefix = static_cast<slot_t>(t / (4.0 * 4.0));
  std::uint64_t inj = 0, jams = 0;
  for (slot_t s = 1; s <= t; ++s) {
    const AdversaryAction act = adv->on_slot(s, d.hist, d.rng);
    if (s == 1) { EXPECT_EQ(act.inject, 2u); }
    if (s <= prefix || s == t) { EXPECT_TRUE(act.jam) << "slot " << s; }
    inj += act.inject;
    jams += act.jam ? 1 : 0;
  }
  EXPECT_EQ(jams, prefix + 1);
  // 2 at the start plus t/(4f(t)) at the end.
  EXPECT_GT(inj, 2u);
}

TEST(ProofAdversaries, Theorem13Budget) {
  const slot_t t = 1 << 12;
  const GrowthFn g = fn::constant(4.0);
  auto adv = theorem13_adversary(t, g, 3);
  Driver d;
  std::uint64_t jams = 0, inj = 0;
  for (slot_t s = 1; s <= t; ++s) {
    const AdversaryAction act = adv->on_slot(s, d.hist, d.rng);
    jams += act.jam ? 1 : 0;
    inj += act.inject;
  }
  EXPECT_EQ(inj, 1u);
  // At most t/(2g) + 1 jams (prefix + random; random may collide).
  EXPECT_LE(jams, static_cast<std::uint64_t>(t / (2.0 * 4.0)) + 1);
  EXPECT_GE(jams, static_cast<std::uint64_t>(t / (4.0 * 4.0)));
}

// --- ComposedAdversary per-component RNG streams ---------------------------

/// Drives `adversary` for `slots` slots over an all-silent history and
/// returns the injection counts per slot. Fresh Driver per call — each run
/// sees an identically-seeded adversary stream, like an engine run would.
std::vector<std::uint64_t> inject_sequence(Adversary& adversary, slot_t slots) {
  Driver d;
  std::vector<std::uint64_t> out;
  out.reserve(slots);
  for (slot_t s = 1; s <= slots; ++s) {
    out.push_back(adversary.on_slot(s, d.hist, d.rng).inject);
    d.advance_silent(s);
  }
  return out;
}

std::vector<bool> jam_sequence(Adversary& adversary, slot_t slots) {
  Driver d;
  std::vector<bool> out;
  out.reserve(slots);
  for (slot_t s = 1; s <= slots; ++s) {
    out.push_back(adversary.on_slot(s, d.hist, d.rng).jam);
    d.advance_silent(s);
  }
  return out;
}

TEST(ComposedAdversaryStreams, SwappingTheJammerDoesNotPerturbArrivals) {
  // The arrival side draws randomness every slot; the jammer axis varies
  // from draw-free to draw-heavy. Per-component fork-streams mean the
  // arrival draw sequence must be identical in every case.
  const auto with_jammer = [](std::unique_ptr<Jammer> jammer) {
    ComposedAdversary adv(bernoulli_arrivals(0.3, 1, 4096), std::move(jammer));
    return inject_sequence(adv, 512);
  };
  const auto baseline = with_jammer(no_jam());
  EXPECT_EQ(with_jammer(iid_jammer(0.5)), baseline);
  EXPECT_EQ(with_jammer(periodic_jammer(16, 4)), baseline);
  EXPECT_EQ(with_jammer(budget_paced_jammer(fn::constant(4.0), 8.0)), baseline);
  EXPECT_EQ(with_jammer(reactive_jammer(fn::constant(4.0), 8.0, 2)), baseline);
}

TEST(ComposedAdversaryStreams, SwappingTheArrivalsDoesNotPerturbJamming) {
  const auto with_arrivals = [](std::unique_ptr<ArrivalProcess> arrivals) {
    ComposedAdversary adv(std::move(arrivals), iid_jammer(0.4));
    return jam_sequence(adv, 512);
  };
  const auto baseline = with_arrivals(no_arrivals());
  EXPECT_EQ(with_arrivals(bernoulli_arrivals(0.7, 1, 4096)), baseline);
  EXPECT_EQ(with_arrivals(batch_arrival(64, 1)), baseline);
  EXPECT_EQ(with_arrivals(bursty_arrivals(32, 8)), baseline);
}

TEST(ComposedAdversaryStreams, ComponentsDrawIndependentlyOfSharedStream) {
  // Both components randomized at once: each must see the same sequence it
  // sees alone (the composition does not interleave their draws).
  ComposedAdversary composed(bernoulli_arrivals(0.3, 1, 4096), iid_jammer(0.4));
  ComposedAdversary arrivals_only(bernoulli_arrivals(0.3, 1, 4096), no_jam());
  ComposedAdversary jammer_only(no_arrivals(), iid_jammer(0.4));
  Driver d;
  std::vector<std::uint64_t> injects, injects_alone;
  std::vector<bool> jams, jams_alone;
  for (slot_t s = 1; s <= 512; ++s) {
    const AdversaryAction both = composed.on_slot(s, d.hist, d.rng);
    injects.push_back(both.inject);
    jams.push_back(both.jam);
    d.advance_silent(s);
  }
  injects_alone = inject_sequence(arrivals_only, 512);
  jams_alone = jam_sequence(jammer_only, 512);
  EXPECT_EQ(injects, injects_alone);
  EXPECT_EQ(jams, jams_alone);
}

// --- proof-adversary determinism -------------------------------------------

/// Same construction + same seed + same history ⇒ identical action sequence.
void expect_deterministic(const std::function<std::unique_ptr<Adversary>()>& make,
                          slot_t slots) {
  auto a = make();
  auto b = make();
  Driver da, db;
  for (slot_t s = 1; s <= slots; ++s) {
    const AdversaryAction act_a = a->on_slot(s, da.hist, da.rng);
    const AdversaryAction act_b = b->on_slot(s, db.hist, db.rng);
    ASSERT_EQ(act_a.jam, act_b.jam) << "slot " << s;
    ASSERT_EQ(act_a.inject, act_b.inject) << "slot " << s;
    da.advance_silent(s);
    db.advance_silent(s);
  }
}

TEST(ProofAdversaries, Lemma41Deterministic) {
  const slot_t t = 1 << 10;
  expect_deterministic(
      [&] { return lemma41_adversary(t, 0.5, fn::log2p(1.0), 77); }, t);
  // A different seed must actually change the random-injected placement.
  auto a = lemma41_adversary(t, 0.5, fn::log2p(1.0), 77);
  auto b = lemma41_adversary(t, 0.5, fn::log2p(1.0), 78);
  EXPECT_NE(inject_sequence(*a, t), inject_sequence(*b, t));
}

TEST(ProofAdversaries, Theorem13Deterministic) {
  const slot_t t = 1 << 12;
  expect_deterministic([&] { return theorem13_adversary(t, fn::constant(4.0), 5); }, t);
  auto a = theorem13_adversary(t, fn::constant(4.0), 5);
  auto b = theorem13_adversary(t, fn::constant(4.0), 6);
  EXPECT_NE(jam_sequence(*a, t), jam_sequence(*b, t));
}

TEST(ProofAdversaries, Theorem42Deterministic) {
  const slot_t t = 1 << 12;
  const FunctionSet fs = functions_constant_g(4.0);
  expect_deterministic([&] { return theorem42_adversary(t, fs); }, t);
}

TEST(ProofAdversaries, Lemma41InjectionVolume) {
  const slot_t t = 1 << 10;
  auto adv = lemma41_adversary(t, 0.5, fn::log2p(1.0), 11);
  Driver d;
  std::uint64_t inj = 0;
  bool jammed_any = false;
  for (slot_t s = 1; s <= t; ++s) {
    const AdversaryAction act = adv->on_slot(s, d.hist, d.rng);
    inj += act.inject;
    jammed_any |= act.jam;
  }
  EXPECT_FALSE(jammed_any) << "Lemma 4.1's adversary never jams";
  // ~ sqrt(t)·(3 log t)/x1 batch-injected plus t/(2 h(t)) random-injected.
  const double batch = std::floor(std::sqrt(static_cast<double>(t))) *
                       std::ceil(3.0 * std::log2(static_cast<double>(t)) / 0.5);
  EXPECT_GE(static_cast<double>(inj), batch);
}

}  // namespace
}  // namespace cr
