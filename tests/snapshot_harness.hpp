/// \file
/// Reusable stop/restore differential harness (determinism rule 8 in
/// docs/ARCHITECTURE.md).
///
/// The contract under test: stepping a CjzCore<CounterCjzStreams> to slot k,
/// serializing it, loading the blob into a fresh core and continuing must
/// produce a SimResult BIT-IDENTICAL to never having stopped. The harness
/// factors the moving parts every such test needs:
///
///   1. materialize(): run the scenario's REAL adversary against a live core
///      (kFull trace, so history-reading adversaries see real feedback) and
///      record the per-slot AdversaryAction sequence. Replays feed the
///      recorded actions, which (a) decouples the differential from
///      PublicHistory — snapshot-bearing cores run trace-disabled — and
///      (b) makes the interrupted and uninterrupted runs see the identical
///      feed by construction.
///   2. replay(): the recorded actions end-to-end on a fresh core.
///   3. snapshot_at() / restore_and_continue(): replay to slot k, save and
///      seal; load the blob into a fresh core and play out the remaining
///      actions.
///
/// The same sealed-blob shape is what tests/test_snapshot.cpp corrupts to
/// exercise every SnapshotReader failure mode.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "channel/trace.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "common/stream_tags.hpp"
#include "engine/cjz_core.hpp"
#include "exp/scenarios.hpp"

namespace cr::snaptest {

/// Version stamped on harness blobs (independent of kStreamSnapshotVersion —
/// these blobs carry a bare core, not a stream driver).
inline constexpr std::uint32_t kHarnessSnapshotVersion = 1;

using CounterCore = CjzCore<CounterCjzStreams>;

/// Everything a replay needs, with the stateful adversary already consumed:
/// the scenario's protocol parameters plus the per-slot action sequence its
/// adversary produced against a live core.
struct ReplayCase {
  FunctionSet fs;
  SimConfig config;
  CjzOptions options;
  std::vector<AdversaryAction> actions;  ///< actions[i] drives slot i+1
};

/// Record `sc`'s adversary against a live counter-substrate core. Consumes
/// the scenario's adversary — build a fresh Scenario per call. The recording
/// stops where the run stops (horizon or a tripped stop condition), so
/// actions.size() is the uninterrupted run's slot count.
inline ReplayCase materialize(Scenario& sc) {
  ReplayCase rc;
  rc.fs = sc.protocol.fs;
  rc.config = sc.config;
  rc.options = sc.protocol.cjz_options;
  const Rng root(rc.config.seed);
  Rng rng_adv = root.fork(streams::kAdversary);
  CounterCore core(&rc.fs, rc.config, rc.options, CounterCjzStreams(rc.config.seed),
                   Trace::Storage::kFull);
  PublicHistory history(core.trace());
  for (slot_t slot = 1; slot <= rc.config.horizon; ++slot) {
    const AdversaryAction action = sc.adversary->on_slot(slot, history, rng_adv);
    rc.actions.push_back(action);
    if (core.step(slot, action, nullptr)) break;
  }
  return rc;
}

/// The recorded actions end-to-end on a fresh trace-disabled core — the
/// reference every interrupted run must reproduce bit for bit.
inline SimResult replay(const ReplayCase& rc, SlotObserver* observer = nullptr) {
  CounterCore core(&rc.fs, rc.config, rc.options, CounterCjzStreams(rc.config.seed),
                   Trace::Storage::kDisabled);
  for (std::size_t i = 0; i < rc.actions.size(); ++i)
    if (core.step(static_cast<slot_t>(i + 1), rc.actions[i], observer)) break;
  return core.finish(observer);
}

/// Replay to slot k (clamped to the recorded run length) and seal the core
/// state into a CRSNAP blob.
inline std::vector<std::uint8_t> snapshot_at(const ReplayCase& rc, slot_t k) {
  CounterCore core(&rc.fs, rc.config, rc.options, CounterCjzStreams(rc.config.seed),
                   Trace::Storage::kDisabled);
  for (std::size_t i = 0; i < rc.actions.size() && static_cast<slot_t>(i + 1) <= k; ++i)
    if (core.step(static_cast<slot_t>(i + 1), rc.actions[i], nullptr)) break;
  SnapshotWriter w;
  core.save(w);
  return w.seal(kHarnessSnapshotVersion);
}

/// Load `blob` into a fresh core configured per `rc` and play out the
/// remaining recorded actions. On any reader failure, *error carries the
/// named diagnostic and the (meaningless) default SimResult is returned.
inline SimResult restore_and_continue(const ReplayCase& rc,
                                      const std::vector<std::uint8_t>& blob,
                                      std::string* error) {
  error->clear();
  CounterCore core(&rc.fs, rc.config, rc.options, CounterCjzStreams(rc.config.seed),
                   Trace::Storage::kDisabled);
  SnapshotReader r(blob, kHarnessSnapshotVersion);
  core.load(r);
  if (r.ok()) r.expect_end();
  if (!r.ok()) {
    *error = r.error();
    return {};
  }
  // Resume at the slot after the last one the blob has seen. If the head run
  // tripped a stop condition, it did so at the final recorded slot (the
  // recording stopped there too), so this loop is then empty.
  const auto resume = static_cast<std::size_t>(core.partial_result().slots);
  for (std::size_t i = resume; i < rc.actions.size(); ++i)
    if (core.step(static_cast<slot_t>(i + 1), rc.actions[i], nullptr)) break;
  return core.finish(nullptr);
}

/// stop-at-k → snapshot → fresh core → restore → continue, in one call.
inline SimResult stop_restore_replay(const ReplayCase& rc, slot_t k, std::string* error) {
  return restore_and_continue(rc, snapshot_at(rc, k), error);
}

/// The slot sweep for a recorded run: coarse fractions of the run length
/// (mid-cohort / mid-calendar positions land here) plus the slots around the
/// first and last successes (cohort birth and the pre-tail/tail boundary),
/// clamped to [1, slots] and deduplicated.
inline std::vector<slot_t> sweep_points(const SimResult& full) {
  const slot_t last = std::max<slot_t>(full.slots, 1);
  std::vector<slot_t> ks = {1, last / 4, last / 2, last - 1, last};
  if (full.first_success > 0) {
    ks.push_back(full.first_success - 1);
    ks.push_back(full.first_success);
    ks.push_back(full.first_success + 1);
  }
  if (full.last_success > 0) {
    ks.push_back(full.last_success - 1);
    ks.push_back(full.last_success);
  }
  for (slot_t& k : ks) k = std::clamp<slot_t>(k, 1, last);
  std::sort(ks.begin(), ks.end());
  ks.erase(std::unique(ks.begin(), ks.end()), ks.end());
  return ks;
}

}  // namespace cr::snaptest
