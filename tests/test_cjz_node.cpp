// Unit tests for the CJZ node state machine: phase transitions driven by
// synthetic feedback, channel-parity bookkeeping, and Phase-3 probability
// arithmetic.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "exp/scenarios.hpp"
#include "protocols/cjz_node.hpp"

namespace cr {
namespace {

FunctionSet fs_const() { return functions_constant_g(4.0); }

TEST(CjzNode, StartsInPhaseOneOnArrivalParity) {
  const FunctionSet fs = fs_const();
  Rng rng(1);
  CjzNode odd(&fs, 7, rng);
  EXPECT_EQ(odd.phase(), CjzNode::Phase::kOne);
  EXPECT_EQ(odd.backoff_channel(), 1);
  CjzNode even(&fs, 8, rng);
  EXPECT_EQ(even.backoff_channel(), 0);
}

TEST(CjzNode, PhaseOneIgnoresNonSuccess) {
  const FunctionSet fs = fs_const();
  Rng rng(2);
  CjzNode node(&fs, 1, rng);
  for (slot_t s = 1; s <= 100; ++s)
    node.on_feedback(s, Feedback::kSilenceOrCollision, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kOne);
}

TEST(CjzNode, PhaseOneToTwoOnAnySuccess) {
  const FunctionSet fs = fs_const();
  Rng rng(3);
  // Success on an odd slot: data channel = odd, Phase-2 backoff on even.
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kTwo);
  EXPECT_EQ(node.backoff_channel(), 0);

  // Success on an even slot: Phase-2 backoff on odd.
  CjzNode node2(&fs, 2, rng);
  node2.on_feedback(10, Feedback::kSuccess, false, false);
  EXPECT_EQ(node2.backoff_channel(), 1);
}

TEST(CjzNode, PhaseTwoNeedsMatchingParity) {
  const FunctionSet fs = fs_const();
  Rng rng(4);
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);  // -> P2 on even channel
  ASSERT_EQ(node.backoff_channel(), 0);
  // Success on odd slot: stays in Phase 2 (that is the data channel).
  node.on_feedback(11, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kTwo);
  // Success on even slot: moves to Phase 3 with l3 = that slot.
  node.on_feedback(14, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.phase(), CjzNode::Phase::kThree);
  EXPECT_EQ(node.l3(), 14u);
  EXPECT_EQ(node.ctrl_channel(), parity_channel(15));
}

TEST(CjzNode, PhaseThreeRestartSwapsChannels) {
  const FunctionSet fs = fs_const();
  Rng rng(5);
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);   // P2, even channel
  node.on_feedback(14, Feedback::kSuccess, false, false);  // P3, l3=14, ctrl=odd
  ASSERT_EQ(node.ctrl_channel(), 1);
  // Success on data channel (even): no restart.
  node.on_feedback(20, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.l3(), 14u);
  // Success on ctrl channel (odd): restart at that slot, ctrl swaps to even.
  node.on_feedback(23, Feedback::kSuccess, false, false);
  EXPECT_EQ(node.l3(), 23u);
  EXPECT_EQ(node.ctrl_channel(), 0);
}

TEST(CjzNode, OwnSuccessFreezesState) {
  const FunctionSet fs = fs_const();
  Rng rng(6);
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, true, true);  // its own transmission won
  // The engine removes it; the node must not have transitioned.
  EXPECT_EQ(node.phase(), CjzNode::Phase::kOne);
}

TEST(CjzNode, PhaseOneOnlySendsOnItsChannel) {
  const FunctionSet fs = fs_const();
  Rng rng(7);
  CjzNode node(&fs, 4, rng);  // even channel
  for (slot_t s = 4; s <= 5000; ++s) {
    const bool sent = node.on_slot(s, rng);
    if (parity_channel(s) == 1) {
      EXPECT_FALSE(sent) << "sent on foreign channel, slot " << s;
    }
  }
}

TEST(CjzNode, PhaseThreeDataSlotOneIsCertain) {
  // h_data(1) = 1: in slot l3+2 every Phase-3 node transmits on the data
  // channel. And h_ctrl(1) = 1 (capped): slot l3+1 likewise on control.
  const FunctionSet fs = fs_const();
  Rng rng(8);
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);
  node.on_feedback(14, Feedback::kSuccess, false, false);  // l3 = 14
  EXPECT_TRUE(node.on_slot(15, rng));  // ctrl k=1, prob 1
  EXPECT_TRUE(node.on_slot(16, rng));  // data k=1, prob 1
}

TEST(CjzProbabilities, CtrlAndDataArithmetic) {
  const FunctionSet fs = fs_const();
  const slot_t l3 = 14;
  // ctrl slots are l3+1, l3+3, ...: ages 1, 2, ...
  EXPECT_DOUBLE_EQ(cjz_ctrl_prob(fs, l3, 15), fs.h_ctrl(1.0));
  EXPECT_DOUBLE_EQ(cjz_ctrl_prob(fs, l3, 17), fs.h_ctrl(2.0));
  EXPECT_DOUBLE_EQ(cjz_ctrl_prob(fs, l3, 15 + 2 * 99), fs.h_ctrl(100.0));
  // data slots are l3+2, l3+4, ...
  EXPECT_DOUBLE_EQ(cjz_data_prob(fs, l3, 16), 1.0);
  EXPECT_DOUBLE_EQ(cjz_data_prob(fs, l3, 18), 0.5);
  EXPECT_DOUBLE_EQ(cjz_data_prob(fs, l3, 16 + 2 * 9), 0.1);
}

TEST(CjzNode, PhaseTwoBackoffStartsAtNextSlot) {
  // After a success at slot 9, Phase-2 backoff runs on even slots starting
  // at 10; being stage 0 it must transmit at slot 10.
  const FunctionSet fs = fs_const();
  Rng rng(9);
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);
  EXPECT_FALSE(node.on_slot(11, rng)) << "odd slot is not its backoff channel";
  EXPECT_TRUE(node.on_slot(10, rng)) << "stage-0 backoff sends at its first channel slot";
}

TEST(CjzFactory, SpawnAndName) {
  CjzFactory factory(fs_const());
  Rng rng(10);
  auto node = factory.spawn(0, 5, rng);
  EXPECT_NE(node, nullptr);
  EXPECT_NE(factory.name().find("cjz"), std::string::npos);
}

class CjzRestartSweep : public ::testing::TestWithParam<slot_t> {};

TEST_P(CjzRestartSweep, RepeatedRestartsAlternateParity) {
  const FunctionSet fs = fs_const();
  Rng rng(GetParam());
  CjzNode node(&fs, 2, rng);
  node.on_feedback(9, Feedback::kSuccess, false, false);
  node.on_feedback(14, Feedback::kSuccess, false, false);
  slot_t s = 14;
  int ctrl = node.ctrl_channel();
  for (int i = 0; i < 20; ++i) {
    // Next success on the current control channel.
    s += (parity_channel(s + 1) == ctrl) ? 1 : 2;
    ASSERT_EQ(parity_channel(s), ctrl);
    node.on_feedback(s, Feedback::kSuccess, false, false);
    EXPECT_EQ(node.l3(), s);
    EXPECT_EQ(node.ctrl_channel(), 1 - ctrl) << "restart must swap channels";
    ctrl = node.ctrl_channel();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CjzRestartSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cr
