// Unit tests for the fast engines (cohort CJZ and cohort batch): invariants
// that hold regardless of randomness, plus calendar-queue mechanics.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "engine/calendar.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/batch.hpp"

namespace cr {
namespace {

ComposedAdversary make_adv(std::unique_ptr<ArrivalProcess> a, std::unique_ptr<Jammer> j) {
  return ComposedAdversary(std::move(a), std::move(j));
}

TEST(Calendar, OrdersBySlotThenKind) {
  Calendar cal;
  cal.push({5, CalendarEvent::Kind::kSend, 1, 0});
  cal.push({5, CalendarEvent::Kind::kStageBegin, 2, 0});
  cal.push({3, CalendarEvent::Kind::kSend, 3, 0});
  EXPECT_FALSE(cal.pop_due(2).has_value());
  auto e1 = cal.pop_due(3);
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->node, 3u);
  EXPECT_FALSE(cal.pop_due(3).has_value());
  auto e2 = cal.pop_due(5);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, CalendarEvent::Kind::kStageBegin) << "stage-begins first within a slot";
  auto e3 = cal.pop_due(5);
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, CalendarEvent::Kind::kSend);
  EXPECT_TRUE(cal.empty());
}

TEST(Calendar, PushWhileDraining) {
  Calendar cal;
  cal.push({4, CalendarEvent::Kind::kStageBegin, 1, 0});
  auto e = cal.pop_due(4);
  ASSERT_TRUE(e.has_value());
  // Simulate a stage-begin scheduling a send in the same slot.
  cal.push({4, CalendarEvent::Kind::kSend, 1, 0});
  auto e2 = cal.pop_due(4);
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, CalendarEvent::Kind::kSend);
}

TEST(FastCjz, NoArrivalsMeansNothingHappens) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(no_arrivals(), no_jam());
  SimConfig cfg;
  cfg.horizon = 1000;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.arrivals, 0u);
  EXPECT_EQ(res.successes, 0u);
  EXPECT_EQ(res.active_slots, 0u);
  EXPECT_EQ(res.total_sends, 0u);
}

TEST(FastCjz, SingleNodeDrains) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(1, 9), no_jam());
  SimConfig cfg;
  cfg.horizon = 10'000;
  cfg.seed = 21;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.successes, 1u);
  // The lone node's stage-0 backoff transmits at its arrival slot: success
  // at slot 9 exactly.
  EXPECT_EQ(res.first_success, 9u);
}

TEST(FastCjz, ConservationAndTraceConsistency) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(100, 1), iid_jammer(0.2));
  SimConfig cfg;
  cfg.horizon = 300'000;
  cfg.seed = 31;
  cfg.stop_when_empty = true;
  FastCjzSimulator sim(fs, adv, cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(res.successes + res.live_at_end, res.arrivals);
  EXPECT_EQ(sim.trace().total_successes(), res.successes);
  EXPECT_EQ(sim.trace().total_jammed(), res.jammed_slots);
  for (slot_t s = 1; s <= res.slots; ++s) {
    const SlotOutcome& out = sim.trace().outcome(s);
    if (out.jammed) { EXPECT_FALSE(out.success()); }
    if (out.success()) { EXPECT_EQ(out.senders, 1u); }
  }
}

TEST(FastCjz, NodeStatsRecorded) {
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(64, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 200'000;
  cfg.seed = 37;
  cfg.stop_when_empty = true;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  EXPECT_EQ(res.node_stats.size(), 64u);
  for (const auto& ns : res.node_stats) {
    EXPECT_TRUE(ns.departed());
    EXPECT_EQ(ns.arrival, 1u);
    EXPECT_GE(ns.departure, ns.arrival);
  }
}

TEST(FastCjz, AttributedSendsSumToTotal) {
  // Every transmission — backoff calendar events AND cohort binomial draws —
  // must be charged to a concrete node under the kNodeStats tier.
  FunctionSet fs = functions_constant_g(4.0);
  auto adv = make_adv(batch_arrival(80, 1), iid_jammer(0.2));
  SimConfig cfg;
  cfg.horizon = 20'000;  // no stop_when_empty: stranded nodes count too
  cfg.seed = 53;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_fast_cjz(fs, adv, cfg);
  ASSERT_EQ(res.node_stats.size(), 80u);
  std::uint64_t sum = 0, departed_with_sends = 0;
  for (const auto& ns : res.node_stats) {
    sum += ns.sends;
    if (ns.departed()) {
      EXPECT_GE(ns.sends, 1u) << "a departed node made at least its winning send";
      ++departed_with_sends;
    }
  }
  EXPECT_EQ(sum, res.total_sends);
  EXPECT_EQ(departed_with_sends, res.successes);
}

TEST(FastCjz, RecordingTierDoesNotPerturbTrajectory) {
  // Attribution draws on a dedicated RNG stream: aggregates are
  // bit-identical whether recording is off, light, or full.
  FunctionSet fs = functions_constant_g(4.0);
  auto run_at = [&](RecordingConfig recording) {
    auto adv = make_adv(batch_arrival(48, 1), iid_jammer(0.25));
    SimConfig cfg;
    cfg.horizon = 50'000;
    cfg.seed = 59;
    cfg.stop_when_empty = true;
    cfg.recording = recording;
    return run_fast_cjz(fs, adv, cfg);
  };
  const SimResult bare = run_at(RecordingConfig::none());
  const SimResult full = run_at(RecordingConfig::full_trace());
  EXPECT_EQ(bare.slots, full.slots);
  EXPECT_EQ(bare.successes, full.successes);
  EXPECT_EQ(bare.total_sends, full.total_sends);
  EXPECT_EQ(bare.first_success, full.first_success);
  EXPECT_EQ(bare.last_success, full.last_success);
  EXPECT_EQ(full.slot_outcomes.size(), full.slots);
}

TEST(FastBatch, AttributedSendsSumToTotal) {
  auto adv = make_adv(scheduled_arrivals({{1, 40}, {500, 20}}), iid_jammer(0.15));
  SimConfig cfg;
  cfg.horizon = 4'000;  // far from drained: exercises stranded attribution
  cfg.seed = 61;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  ASSERT_EQ(res.node_stats.size(), 60u);
  std::uint64_t sum = 0;
  for (const auto& ns : res.node_stats) {
    sum += ns.sends;
    if (ns.departed()) {
      EXPECT_GE(ns.sends, 1u);
    }
  }
  EXPECT_EQ(sum, res.total_sends);
}

TEST(FastBatch, RecordingTierDoesNotPerturbTrajectory) {
  auto run_at = [&](RecordingConfig recording) {
    auto adv = make_adv(batch_arrival(64, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 50'000;
    cfg.seed = 67;
    cfg.recording = recording;
    return run_fast_batch(profiles::h_data(), adv, cfg);
  };
  const SimResult bare = run_at(RecordingConfig::none());
  const SimResult full = run_at(RecordingConfig::full_trace());
  EXPECT_EQ(bare.successes, full.successes);
  EXPECT_EQ(bare.total_sends, full.total_sends);
  EXPECT_EQ(bare.first_success, full.first_success);
  EXPECT_EQ(bare.last_success, full.last_success);
}

TEST(FastBatch, DeterministicProfileMatchesGenericExactly) {
  // aloha(1.0) leaves no randomness in the protocol: both engines must
  // produce the very same trajectory (perpetual 2-node collision).
  auto run_fast = [&] {
    auto adv = make_adv(batch_arrival(2, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 200;
    cfg.recording = RecordingConfig::full_trace();
    return run_fast_batch(profiles::aloha(1.0), adv, cfg);
  };
  auto run_ref = [&] {
    ProfileProtocolFactory factory(profiles::aloha(1.0));
    auto adv = make_adv(batch_arrival(2, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 200;
    cfg.recording = RecordingConfig::full_trace();
    return run_generic(factory, adv, cfg);
  };
  const SimResult fast = run_fast();
  const SimResult ref = run_ref();
  EXPECT_EQ(fast.slot_outcomes, ref.slot_outcomes);
  EXPECT_EQ(fast.total_sends, ref.total_sends);
  ASSERT_EQ(fast.node_stats.size(), ref.node_stats.size());
  for (std::size_t i = 0; i < fast.node_stats.size(); ++i)
    EXPECT_EQ(fast.node_stats[i].sends, ref.node_stats[i].sends) << i;
}

TEST(FastBatch, SingleNodeImmediateSuccess) {
  auto adv = make_adv(batch_arrival(1, 5), no_jam());
  SimConfig cfg;
  cfg.horizon = 100;
  cfg.stop_when_empty = true;
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  EXPECT_EQ(res.successes, 1u);
  EXPECT_EQ(res.first_success, 5u) << "h_data(1)=1: transmits at arrival";
}

TEST(FastBatch, PairCollidesAtArrival) {
  // Two nodes, h_data(1)=1: both transmit at slot 1 -> guaranteed collision.
  auto adv = make_adv(batch_arrival(2, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 10'000;
  cfg.seed = 41;
  cfg.stop_when_empty = true;
  FastBatchSimulator sim(profiles::h_data(), adv, cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(sim.trace().outcome(1).senders, 2u);
  EXPECT_FALSE(sim.trace().outcome(1).success());
  EXPECT_EQ(res.successes, 2u) << "both eventually get through";
}

TEST(FastBatch, ConservationUnderJamming) {
  auto adv = make_adv(batch_arrival(200, 1), iid_jammer(0.3));
  SimConfig cfg;
  cfg.horizon = 200'000;
  cfg.seed = 43;
  FastBatchSimulator sim(profiles::h_data(), adv, cfg);
  const SimResult res = sim.run();
  EXPECT_EQ(res.successes + res.live_at_end, 200u);
  for (slot_t s = 1; s <= res.slots; ++s) {
    const SlotOutcome& out = sim.trace().outcome(s);
    if (out.jammed) { EXPECT_FALSE(out.success()); }
  }
}

TEST(FastBatch, MultipleCohortLatencies) {
  // No stop_when_empty: the first cohort drains before slot 1000 and the
  // engine must keep going for the second batch.
  auto adv = make_adv(scheduled_arrivals({{1, 10}, {1000, 10}}), no_jam());
  SimConfig cfg;
  cfg.horizon = 100'000;
  cfg.seed = 47;
  cfg.recording = RecordingConfig::node_stats();
  const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
  EXPECT_EQ(res.successes, 20u);
  int early = 0, late = 0;
  for (const auto& ns : res.node_stats) {
    if (ns.arrival == 1) ++early;
    if (ns.arrival == 1000) ++late;
    EXPECT_GE(ns.departure, ns.arrival);
  }
  EXPECT_EQ(early, 10);
  EXPECT_EQ(late, 10);
}

TEST(FastBatch, AlohaSaturationNeverResolves) {
  // Two aloha(1.0) nodes collide forever in the cohort engine too.
  auto adv = make_adv(batch_arrival(2, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 1000;
  const SimResult res = run_fast_batch(profiles::aloha(1.0), adv, cfg);
  EXPECT_EQ(res.successes, 0u);
  EXPECT_EQ(res.total_sends, 2000u);
}

TEST(FastEngines, ObserverPlumbing) {
  class Counter final : public SlotObserver {
   public:
    std::uint64_t calls = 0;
    void on_slot(const SlotOutcome&, std::uint64_t, std::uint64_t) override { ++calls; }
  };
  FunctionSet fs = functions_constant_g(4.0);
  auto adv1 = make_adv(batch_arrival(10, 1), no_jam());
  SimConfig cfg;
  cfg.horizon = 5000;
  Counter c1;
  run_fast_cjz(fs, adv1, cfg, &c1);
  EXPECT_EQ(c1.calls, 5000u);
  auto adv2 = make_adv(batch_arrival(10, 1), no_jam());
  Counter c2;
  run_fast_batch(profiles::h_data(), adv2, cfg, &c2);
  EXPECT_EQ(c2.calls, 5000u);
}

}  // namespace
}  // namespace cr
