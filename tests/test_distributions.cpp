// Distributional correctness of the RNG beyond first/second moments:
// exact pmf checks for small binomials, regime-boundary consistency, and
// the statistical equivalence of the cohort trick (Binomial(m, p) vs m
// independent Bernoulli draws) that the fast engines rely on.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.hpp"

namespace cr {
namespace {

double binom_pmf(int n, int k, double p) {
  double logc = std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
  return std::exp(logc + k * std::log(p) + (n - k) * std::log1p(-p));
}

TEST(Distributions, SmallBinomialMatchesExactPmf) {
  // n = 8, p = 0.3: compare empirical frequencies against the exact pmf.
  Rng rng(101);
  const int n = 8;
  const double p = 0.3;
  const int trials = 200000;
  std::array<int, 9> counts{};
  for (int i = 0; i < trials; ++i) ++counts[rng.binomial(n, p)];
  for (int k = 0; k <= n; ++k) {
    const double expect = binom_pmf(n, k, p);
    const double got = static_cast<double>(counts[k]) / trials;
    EXPECT_NEAR(got, expect, 0.004) << "k=" << k;
  }
}

TEST(Distributions, BinomialRegimeBoundaryConsistent) {
  // The n = 64 (coin-by-coin) and n = 65 (inversion) regimes should produce
  // nearly identical distributions for the same mean.
  Rng r1(103), r2(104);
  const int trials = 60000;
  double s1 = 0, s2 = 0, q1 = 0, q2 = 0;
  for (int i = 0; i < trials; ++i) {
    const double a = static_cast<double>(r1.binomial(64, 0.125));
    const double b = static_cast<double>(r2.binomial(65, 8.0 / 65.0));
    s1 += a;
    s2 += b;
    q1 += a * a;
    q2 += b * b;
  }
  EXPECT_NEAR(s1 / trials, s2 / trials, 0.1);
  EXPECT_NEAR(q1 / trials - (s1 / trials) * (s1 / trials),
              q2 / trials - (s2 / trials) * (s2 / trials), 0.4);
}

TEST(Distributions, CohortTrickEquivalence) {
  // The fast engines replace m independent Bernoulli(p) sends with one
  // Binomial(m, p) draw. Verify P[sum == 1] (the success-relevant event)
  // agrees between the two samplings.
  Rng rng(105);
  const int m = 40;
  const double p = 1.0 / 40.0;
  const int trials = 120000;
  int one_binom = 0, one_bern = 0;
  for (int i = 0; i < trials; ++i) {
    if (rng.binomial(m, p) == 1) ++one_binom;
    int s = 0;
    for (int j = 0; j < m; ++j) s += rng.bernoulli(p) ? 1 : 0;
    if (s == 1) ++one_bern;
  }
  EXPECT_NEAR(static_cast<double>(one_binom) / trials,
              static_cast<double>(one_bern) / trials, 0.006);
}

TEST(Distributions, GeometricMatchesPmfHead) {
  Rng rng(107);
  const double p = 0.25;
  const int trials = 120000;
  std::array<int, 4> counts{};
  for (int i = 0; i < trials; ++i) {
    const auto g = rng.geometric(p);
    if (g < counts.size()) ++counts[g];
  }
  for (std::size_t k = 0; k < counts.size(); ++k) {
    const double expect = p * std::pow(1.0 - p, static_cast<double>(k));
    EXPECT_NEAR(static_cast<double>(counts[k]) / trials, expect, 0.005) << "k=" << k;
  }
}

TEST(Distributions, NormalTailFractions) {
  Rng rng(109);
  const int trials = 120000;
  int beyond1 = 0, beyond2 = 0;
  for (int i = 0; i < trials; ++i) {
    const double x = std::fabs(rng.normal01());
    if (x > 1.0) ++beyond1;
    if (x > 2.0) ++beyond2;
  }
  EXPECT_NEAR(static_cast<double>(beyond1) / trials, 0.3173, 0.01);
  EXPECT_NEAR(static_cast<double>(beyond2) / trials, 0.0455, 0.005);
}

}  // namespace
}  // namespace cr
