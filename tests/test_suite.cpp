// Tests for the manifest-driven suite runner (src/cli/suite.hpp):
// grid-expansion counts and ordering, manifest validation against the
// BenchRegistry, deterministic sharding (disjoint cover), and the
// resume/bit-identical-output contract of run_suite.
#include "cli/suite.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "cli/bench_registry.hpp"
#include "common/json.hpp"

namespace cr {
namespace {

namespace fs = std::filesystem;

SuiteLoadResult parse(const std::string& text) {
  const JsonParseResult json = JsonValue::parse(text);
  EXPECT_TRUE(json.ok()) << json.error;
  return parse_suite(*json.value, "test-manifest");
}

TEST(SuiteParse, MinimalManifest) {
  const auto loaded = parse(R"({"name": "s", "cells": [{"bench": "latency"}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  EXPECT_EQ(loaded.spec.name, "s");
  EXPECT_EQ(loaded.spec.output_dir, "out/s");  // default
  ASSERT_EQ(loaded.spec.blocks.size(), 1u);
  // No "seeds" key = run at the bench's own canonical base seeds: the cell
  // carries no --seed (a forced seed would collapse multi-base benches).
  EXPECT_TRUE(loaded.spec.blocks[0].seeds.empty());
  const auto cells = expand_suite(loaded.spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_FALSE(cells[0].has_seed);
  EXPECT_EQ(cells[0].id, "latency__seed-default");
}

TEST(SuiteParse, RejectsUnknownBench) {
  const auto loaded = parse(R"({"name": "s", "cells": [{"bench": "latencyy"}]})");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("unknown bench"), std::string::npos) << loaded.error;
}

TEST(SuiteParse, RejectsUnknownGridAxis) {
  const auto loaded = parse(
      R"({"name": "s", "cells": [{"bench": "latency", "grid": {"max_n": [64]}}]})");
  EXPECT_FALSE(loaded.ok());  // latency declares max_exp, not max_n
  EXPECT_NE(loaded.error.find("max_n"), std::string::npos) << loaded.error;
}

TEST(SuiteParse, RejectsReservedFlags) {
  for (const std::string axis : {"seed", "csv", "quiet", "threads", "quick"}) {
    const auto loaded = parse(R"({"name": "s", "cells": [{"bench": "latency",
                                 "grid": {")" + axis + R"(": [1]}}]})");
    EXPECT_FALSE(loaded.ok()) << axis;
  }
  const auto defaults = parse(
      R"({"name": "s", "defaults": {"seed": 1}, "cells": [{"bench": "latency"}]})");
  EXPECT_FALSE(defaults.ok());
}

TEST(SuiteParse, RejectsNonIntegerAndOverflowingSeeds) {
  // Fractional and negative seeds must fail loudly rather than truncate
  // through a double cast, and anything past INT64_MAX must fail HERE —
  // the bench-side --seed goes through Cli::get_int (strtoll), so a larger
  // value would pass validation only to abort the cell at run time.
  for (const std::string bad :
       {"1.9", "-1", "1e3", "9223372036854775808", "18446744073709551615"}) {
    const auto loaded = parse(
        R"({"name": "s", "cells": [{"bench": "latency", "seeds": [)" + bad + "]}]}");
    EXPECT_FALSE(loaded.ok()) << bad;
  }
  const auto max_ok = parse(
      R"({"name": "s", "cells": [{"bench": "latency", "seeds": [9223372036854775807]}]})");
  ASSERT_TRUE(max_ok.ok()) << max_ok.error;
  EXPECT_EQ(max_ok.spec.blocks[0].seeds[0], static_cast<std::uint64_t>(INT64_MAX));
}

TEST(SuiteParse, RejectsDefaultNoBenchDeclares) {
  const auto loaded = parse(
      R"({"name": "s", "defaults": {"max_n": 64}, "cells": [{"bench": "latency"}]})");
  EXPECT_FALSE(loaded.ok());  // no bench in this suite takes --max_n
}

TEST(SuiteParse, RejectsDuplicateCells) {
  const auto loaded = parse(R"({"name": "s", "cells": [
      {"bench": "latency", "seeds": [7]}, {"bench": "latency", "seeds": [7]}]})");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("duplicate cell"), std::string::npos) << loaded.error;
}

TEST(SuiteParse, DiagnosesSanitizationCollisionsAsSuch) {
  // "a/b" and "a:b" are DIFFERENT values that both sanitize to "a_b" in the
  // cell id; the error must name the id clash, not claim the cells are
  // duplicates.
  const auto loaded = parse(R"({"name": "s", "cells": [
      {"bench": "scenario", "grid": {"scenario": ["a/b", "a:b"]}}]})");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error.find("cell id collision"), std::string::npos) << loaded.error;
  EXPECT_EQ(loaded.error.find("duplicate cell"), std::string::npos) << loaded.error;
}

TEST(SuiteExpand, GridTimesSeedsCounts) {
  // All three presets consume --jam (bursty would fail the consumed-param
  // validation, by design).
  const auto loaded = parse(R"({"name": "s", "cells": [
      {"bench": "scenario",
       "grid": {"scenario": ["batch", "worst_case", "bernoulli_stream"], "jam": [0.0, 0.25]},
       "seeds": [1, 2, 3, 4]},
      {"bench": "energy", "grid": {"max_n": [64, 128]}}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const auto cells = expand_suite(loaded.spec);
  EXPECT_EQ(cells.size(), 3u * 2u * 4u + 2u);
  // Row-major in manifest order: rightmost axis (jam) fastest, seeds fastest
  // of all; indices are the expansion positions.
  EXPECT_EQ(cells[0].id, "scenario__scenario-batch__jam-0.0__seed-1");
  EXPECT_EQ(cells[4].id, "scenario__scenario-batch__jam-0.25__seed-1");
  EXPECT_EQ(cells[8].id, "scenario__scenario-worst_case__jam-0.0__seed-1");
  EXPECT_EQ(cells[24].id, "energy__max_n-64__seed-default");
  EXPECT_FALSE(cells[24].has_seed);
  EXPECT_TRUE(cells[0].has_seed);
  for (std::size_t i = 0; i < cells.size(); ++i) EXPECT_EQ(cells[i].index, i);
}

TEST(SuiteExpand, DefaultsApplyOnlyWhereDeclared) {
  const auto loaded = parse(R"({"name": "s", "defaults": {"reps": 3, "max_n": 64},
      "cells": [{"bench": "energy"}, {"bench": "latency"}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const auto cells = expand_suite(loaded.spec);
  ASSERT_EQ(cells.size(), 2u);
  const auto flags_of = [](const SuiteCell& cell) {
    std::map<std::string, std::string> out(cell.flags.begin(), cell.flags.end());
    return out;
  };
  EXPECT_EQ(flags_of(cells[0]).count("max_n"), 1u);  // energy declares --max_n
  EXPECT_EQ(flags_of(cells[1]).count("max_n"), 0u);  // latency does not
  EXPECT_EQ(flags_of(cells[0]).at("reps"), "3");     // standard flag: everywhere
  EXPECT_EQ(flags_of(cells[1]).at("reps"), "3");
}

TEST(SuiteExpand, RawNumberTextSurvives) {
  const auto loaded = parse(R"({"name": "s", "cells": [
      {"bench": "scenario", "grid": {"jam": [0.25]}}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  const auto cells = expand_suite(loaded.spec);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].flags.back(), (std::pair<std::string, std::string>{"jam", "0.25"}));
}

TEST(Shard, ParseAcceptsValidRejectsMalformed) {
  ShardSpec shard;
  EXPECT_TRUE(parse_shard("1/1", &shard));
  EXPECT_TRUE(parse_shard("2/3", &shard));
  EXPECT_EQ(shard.index, 2);
  EXPECT_EQ(shard.count, 3);
  for (const std::string bad : {"", "1", "/", "0/2", "3/2", "1/0", "a/2", "1/2/3", "-1/2",
                                // would truncate in the int cast and run the wrong subset
                                "4294967298/4294967299", "4294967297/4294967297"})
    EXPECT_FALSE(parse_shard(bad, &shard)) << bad;
}

TEST(Shard, PartitionIsADisjointCover) {
  for (int count = 1; count <= 5; ++count) {
    for (std::size_t cell = 0; cell < 23; ++cell) {
      int owners = 0;
      for (int index = 1; index <= count; ++index)
        owners += cell_in_shard(cell, ShardSpec{index, count}) ? 1 : 0;
      EXPECT_EQ(owners, 1) << "cell " << cell << " of shards /" << count;
    }
  }
}

TEST(Suite, ConfigHashIsShardIndependentButConfigSensitive) {
  const auto a = parse(R"({"name": "s", "cells": [
      {"bench": "scenario", "grid": {"jam": [0.0, 0.25]}}]})");
  const auto b = parse(R"({"name": "s", "cells": [
      {"bench": "scenario", "grid": {"jam": [0.0, 0.5]}}]})");
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string hash_a = suite_config_hash(expand_suite(a.spec));
  EXPECT_EQ(hash_a, suite_config_hash(expand_suite(a.spec)));  // deterministic
  EXPECT_NE(hash_a, suite_config_hash(expand_suite(b.spec)));  // config-sensitive
}

/// End-to-end fixture: a tiny two-cell suite run into a temp directory.
class SuiteRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cr_test_suite_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    const auto loaded = parse(R"({"name": "tiny", "defaults": {"reps": 1},
        "cells": [{"bench": "scenario",
                   "grid": {"scenario": ["batch"], "horizon": [512], "n": [16],
                            "jam": [0.0, 0.5]},
                   "seeds": [3]}]})");
    ASSERT_TRUE(loaded.ok()) << loaded.error;
    spec_ = loaded.spec;
  }
  void TearDown() override { fs::remove_all(dir_); }

  SuiteRunOptions options() {
    SuiteRunOptions opts;
    opts.output_dir = dir_.string();
    opts.threads = 1;
    return opts;
  }

  std::map<std::string, std::string> csv_contents() const {
    std::map<std::string, std::string> out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      if (entry.path().extension() != ".csv") continue;
      std::ifstream in(entry.path());
      std::stringstream buf;
      buf << in.rdbuf();
      out[entry.path().filename().string()] = buf.str();
    }
    return out;
  }

  fs::path dir_;
  SuiteSpec spec_;
};

TEST_F(SuiteRunTest, RunsCellsAndWritesManifest) {
  std::ostringstream log;
  EXPECT_EQ(run_suite(spec_, options(), log), 0);
  const auto csvs = csv_contents();
  EXPECT_EQ(csvs.size(), 2u);
  for (const auto& [name, content] : csvs)
    EXPECT_NE(content.find("scenario,engine"), std::string::npos) << name;
  ASSERT_TRUE(fs::exists(dir_ / "manifest.json"));
  const auto manifest = JsonValue::parse_file((dir_ / "manifest.json").string());
  ASSERT_TRUE(manifest.ok()) << manifest.error;
  EXPECT_EQ(manifest.value->find("suite")->as_string(), "tiny");
  EXPECT_EQ(manifest.value->find("cells")->items().size(), 2u);
  for (const auto& cell : manifest.value->find("cells")->items())
    EXPECT_EQ(cell->find("status")->as_string(), "ok");
}

TEST_F(SuiteRunTest, ResumeSkipsCompletedCellsBitIdentically) {
  std::ostringstream log1;
  EXPECT_EQ(run_suite(spec_, options(), log1), 0);
  const auto first = csv_contents();
  ASSERT_EQ(first.size(), 2u);

  // Second run: everything cached, bytes untouched.
  std::ostringstream log2;
  EXPECT_EQ(run_suite(spec_, options(), log2), 0);
  EXPECT_EQ(csv_contents(), first);
  const auto manifest = JsonValue::parse_file((dir_ / "manifest.json").string());
  ASSERT_TRUE(manifest.ok());
  for (const auto& cell : manifest.value->find("cells")->items())
    EXPECT_EQ(cell->find("status")->as_string(), "cached");

  // Delete one cell's output: only that cell reruns, and its regenerated
  // bytes match the original run exactly.
  const std::string victim = first.begin()->first;
  fs::remove(dir_ / victim);
  std::ostringstream log3;
  EXPECT_EQ(run_suite(spec_, options(), log3), 0);
  EXPECT_EQ(csv_contents(), first);
  EXPECT_NE(log3.str().find("1 ran, 1 cached"), std::string::npos) << log3.str();
}

TEST_F(SuiteRunTest, ShardsAreDisjointAndUnionMatchesUnsharded) {
  std::ostringstream log;
  EXPECT_EQ(run_suite(spec_, options(), log), 0);
  const auto unsharded = csv_contents();
  ASSERT_EQ(unsharded.size(), 2u);
  fs::remove_all(dir_);

  // Shard 1 produces a strict subset…
  SuiteRunOptions opts1 = options();
  opts1.shard = ShardSpec{1, 2};
  std::ostringstream log1;
  EXPECT_EQ(run_suite(spec_, opts1, log1), 0);
  EXPECT_TRUE(fs::exists(dir_ / "manifest.1of2.json"));
  EXPECT_EQ(csv_contents().size(), 1u);

  // …and shard 2 the complement: the union equals the unsharded run, byte
  // for byte (each shard's log confirms it ran exactly one cell).
  SuiteRunOptions opts2 = options();
  opts2.shard = ShardSpec{2, 2};
  std::ostringstream log2;
  EXPECT_EQ(run_suite(spec_, opts2, log2), 0);
  EXPECT_TRUE(fs::exists(dir_ / "manifest.2of2.json"));
  EXPECT_NE(log2.str().find("1 ran, 0 cached"), std::string::npos) << log2.str();
  EXPECT_EQ(csv_contents(), unsharded);
}

TEST_F(SuiteRunTest, RefusesToResumeOverStaleOutputs) {
  std::ostringstream log;
  EXPECT_EQ(run_suite(spec_, options(), log), 0);
  const auto original = csv_contents();

  // Same output dir, different expansion (an extra grid value): the old
  // CSVs are stale for the new configuration, so resume must refuse rather
  // than mix them in.
  const auto changed = parse(R"({"name": "tiny", "defaults": {"reps": 1},
      "cells": [{"bench": "scenario",
                 "grid": {"scenario": ["batch"], "horizon": [512], "n": [16],
                          "jam": [0.0, 0.5, 0.9]},
                 "seeds": [3]}]})");
  ASSERT_TRUE(changed.ok()) << changed.error;
  std::ostringstream log2;
  EXPECT_EQ(run_suite(changed.spec, options(), log2), 1);
  EXPECT_NE(log2.str().find("refusing to resume"), std::string::npos) << log2.str();
  EXPECT_EQ(csv_contents(), original);  // nothing ran, nothing overwritten

  // A --quick flip over the same expansion is just as stale.
  SuiteRunOptions quick_opts = options();
  quick_opts.quick = true;
  std::ostringstream log3;
  EXPECT_EQ(run_suite(spec_, quick_opts, log3), 1);
  EXPECT_NE(log3.str().find("--quick mode differs"), std::string::npos) << log3.str();

  // --force reruns every cell, so it may proceed over the stale outputs.
  SuiteRunOptions force_opts = options();
  force_opts.force = true;
  std::ostringstream log4;
  EXPECT_EQ(run_suite(changed.spec, force_opts, log4), 0);
  EXPECT_EQ(csv_contents().size(), 3u);
}

TEST_F(SuiteRunTest, FailedCellIsIsolatedAndRemainingCellsStillRun) {
  // "junk" passes name validation (any scalar is legal manifest text) but
  // aborts the bench's Cli::get_int at run time. The forked-child isolation
  // must turn that into one "failed" cell, not a dead suite process.
  const auto loaded = parse(R"({"name": "tiny", "defaults": {"reps": 1},
      "cells": [
        {"bench": "scenario", "grid": {"horizon": ["junk"], "n": [16]}},
        {"bench": "scenario", "grid": {"horizon": [512], "n": [16]}}]})");
  ASSERT_TRUE(loaded.ok()) << loaded.error;
  std::ostringstream log;
  EXPECT_EQ(run_suite(loaded.spec, options(), log), 1);
  EXPECT_EQ(csv_contents().size(), 1u);  // the good cell's CSV exists
  EXPECT_NE(log.str().find("failed"), std::string::npos) << log.str();
  EXPECT_NE(log.str().find("1 ran, 0 cached, 0 cache hits, 1 failed"), std::string::npos)
      << log.str();
  const auto manifest = JsonValue::parse_file((dir_ / "manifest.json").string());
  ASSERT_TRUE(manifest.ok()) << manifest.error;
  EXPECT_EQ(manifest.value->find("cells")->items()[0]->find("status")->as_string(), "failed");
  EXPECT_EQ(manifest.value->find("cells")->items()[1]->find("status")->as_string(), "ok");
}

TEST_F(SuiteRunTest, DryRunExecutesNothing) {
  SuiteRunOptions opts = options();
  opts.dry_run = true;
  std::ostringstream log;
  EXPECT_EQ(run_suite(spec_, opts, log), 0);
  EXPECT_FALSE(fs::exists(dir_));
  EXPECT_NE(log.str().find("dry run"), std::string::npos);
}

}  // namespace
}  // namespace cr
