// Unit tests for the table renderer, CSV writer and CLI parser.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"

namespace cr {
namespace {

TEST(Cell, Formats) {
  EXPECT_EQ(Cell("abc").text(), "abc");
  EXPECT_EQ(Cell(42).text(), "42");
  EXPECT_EQ(Cell(static_cast<std::int64_t>(-7)).text(), "-7");
  EXPECT_EQ(Cell(static_cast<std::uint64_t>(9)).text(), "9");
  EXPECT_EQ(Cell(3.14159, 2).text(), "3.14");
  EXPECT_EQ(Cell(1.0, 0).text(), "1");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::nan(""), 2), "nan");
  EXPECT_EQ(format_double(1.0 / 0.0, 2), "inf");
  EXPECT_EQ(format_double(-1.0 / 0.0, 2), "-inf");
}

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "value"});
  t.add_row({"alpha", Cell(1)});
  t.add_row({"b", Cell(22)});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, TitlePrinted) {
  Table t({"x"});
  t.set_title("My Table");
  EXPECT_EQ(t.to_string().rfind("My Table\n", 0), 0u);
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"1", "2"});
  w.row_numeric({3.5, 4.0});
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.5,4\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, NumericRowsRoundTripExactly) {
  // Values >= 1e6 used to be truncated by precision(6); every cell must now
  // parse back to the bit-identical double.
  const std::vector<double> values = {1234567.891011, 1e6 + 0.125, 9876543210.123,
                                      1.0 / 3.0, -2.5e-7, 0.0};
  std::ostringstream os;
  CsvWriter w(os, {"a", "b", "c", "d", "e", "f"});
  w.row_numeric(values);
  std::istringstream is(os.str());
  std::string header, line;
  ASSERT_TRUE(std::getline(is, header));
  ASSERT_TRUE(std::getline(is, line));
  std::istringstream cells(line);
  std::string cell;
  for (double expected : values) {
    ASSERT_TRUE(std::getline(cells, cell, ','));
    EXPECT_EQ(std::stod(cell), expected) << "cell text: " << cell;
  }
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note: a bare "--flag value" consumes the value, so boolean flags must
  // come last or use --flag=true.
  const char* argv[] = {"prog", "--n=128", "--rate", "0.5", "input.txt", "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.program(), "prog");
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
}

TEST(Cli, Defaults) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("x"));
  EXPECT_EQ(cli.get_int("x", 7), 7);
  EXPECT_EQ(cli.get_string("s", "d"), "d");
  EXPECT_FALSE(cli.get_bool("b", false));
}

TEST(Cli, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_TRUE(cli.get_bool("b", false));
  EXPECT_TRUE(cli.get_bool("c", false));
  EXPECT_FALSE(cli.get_bool("d", true));
}

}  // namespace
}  // namespace cr
