// Unit tests for channel semantics: the no-collision-detection feedback
// model, slot resolution truth table, and the trace/public-history facade.
#include <gtest/gtest.h>

#include "channel/channel.hpp"
#include "channel/trace.hpp"
#include "channel/types.hpp"

namespace cr {
namespace {

TEST(Types, ParityChannel) {
  EXPECT_EQ(parity_channel(1), 1);
  EXPECT_EQ(parity_channel(2), 0);
  EXPECT_EQ(parity_channel(1001), 1);
}

TEST(ResolveSlot, TruthTable) {
  // 0 senders: silence (indistinguishable from collision).
  EXPECT_FALSE(resolve_slot(1, 0, false, kNoNode).success());
  // 1 sender, no jam: success with that id.
  const SlotOutcome one = resolve_slot(1, 1, false, 42);
  EXPECT_TRUE(one.success());
  EXPECT_EQ(one.winner, 42u);
  EXPECT_EQ(one.feedback(), Feedback::kSuccess);
  // 2+ senders: collision.
  EXPECT_FALSE(resolve_slot(1, 2, false, kNoNode).success());
  EXPECT_FALSE(resolve_slot(1, 100, false, kNoNode).success());
  // Jamming kills even a lone sender.
  EXPECT_FALSE(resolve_slot(1, 1, true, 42).success());
  // Jammed empty slot: still silence-or-collision.
  EXPECT_FALSE(resolve_slot(1, 0, true, kNoNode).success());
}

TEST(ResolveSlot, NoCollisionDetectionFeedback) {
  // Silence, collision, and jam all map to the SAME feedback value — this is
  // the defining property of the model.
  const Feedback silence = resolve_slot(1, 0, false, kNoNode).feedback();
  const Feedback collision = resolve_slot(1, 3, false, kNoNode).feedback();
  const Feedback jammed = resolve_slot(1, 1, true, 7).feedback();
  EXPECT_EQ(silence, Feedback::kSilenceOrCollision);
  EXPECT_EQ(collision, silence);
  EXPECT_EQ(jammed, silence);
}

TEST(Channel, AccumulatesSenders) {
  Channel ch;
  ch.begin_slot(1, false);
  EXPECT_TRUE(ch.slot_open());
  ch.broadcast(5);
  const SlotOutcome out = ch.resolve();
  EXPECT_FALSE(ch.slot_open());
  EXPECT_TRUE(out.success());
  EXPECT_EQ(out.winner, 5u);
  EXPECT_EQ(out.senders, 1u);
}

TEST(Channel, CollisionLosesWinner) {
  Channel ch;
  ch.begin_slot(1, false);
  ch.broadcast(1);
  ch.broadcast(2);
  const SlotOutcome out = ch.resolve();
  EXPECT_FALSE(out.success());
  EXPECT_EQ(out.senders, 2u);
  EXPECT_EQ(out.winner, kNoNode);
}

TEST(Channel, JammedSlot) {
  Channel ch;
  ch.begin_slot(3, true);
  ch.broadcast(9);
  const SlotOutcome out = ch.resolve();
  EXPECT_TRUE(out.jammed);
  EXPECT_FALSE(out.success());
  EXPECT_EQ(out.slot, 3u);
}

TEST(Channel, Reusable) {
  Channel ch;
  for (slot_t s = 1; s <= 10; ++s) {
    ch.begin_slot(s, false);
    if (s % 2 == 0) ch.broadcast(s);
    const SlotOutcome out = ch.resolve();
    EXPECT_EQ(out.success(), s % 2 == 0);
  }
}

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.record(resolve_slot(1, 0, false, kNoNode));
  trace.record(resolve_slot(2, 1, false, 11));
  trace.record(resolve_slot(3, 1, true, 12));
  EXPECT_EQ(trace.slots(), 3u);
  EXPECT_EQ(trace.total_successes(), 1u);
  EXPECT_EQ(trace.total_jammed(), 1u);
  EXPECT_EQ(trace.last_success_slot(), 2u);
  EXPECT_EQ(trace.outcome(2).winner, 11u);
}

TEST(PublicHistory, ExposesOnlyPublicView) {
  Trace trace;
  PublicHistory hist(trace);
  EXPECT_EQ(hist.slots(), 0u);
  trace.record(resolve_slot(1, 5, false, kNoNode));   // collision
  trace.record(resolve_slot(2, 0, true, kNoNode));    // jammed silence
  trace.record(resolve_slot(3, 1, false, 77));        // success
  EXPECT_EQ(hist.slots(), 3u);
  EXPECT_EQ(hist.feedback(1), Feedback::kSilenceOrCollision);
  EXPECT_EQ(hist.feedback(2), Feedback::kSilenceOrCollision);
  EXPECT_TRUE(hist.was_success(3));
  EXPECT_EQ(hist.total_successes(), 1u);
  EXPECT_EQ(hist.last_success_slot(), 3u);
}

}  // namespace
}  // namespace cr
