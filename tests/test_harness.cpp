// Unit tests for the experiment harness.
#include <gtest/gtest.h>

#include "exp/harness.hpp"

namespace cr {
namespace {

SimResult fake_result(std::uint64_t seed) {
  SimResult r;
  r.successes = seed * 10;
  r.slots = 100;
  return r;
}

TEST(Harness, ReplicateUsesSequentialSeeds) {
  const auto results = replicate(5, 10, fake_result);
  ASSERT_EQ(results.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[i].successes, (10u + i) * 10);
}

TEST(Harness, CollectAggregates) {
  const auto results = replicate(4, 1, fake_result);  // successes 10,20,30,40
  const Accumulator acc = collect(results, [](const SimResult& r) {
    return static_cast<double>(r.successes);
  });
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 25.0);
  EXPECT_DOUBLE_EQ(acc.min(), 10.0);
  EXPECT_DOUBLE_EQ(acc.max(), 40.0);
}

TEST(Harness, Fraction) {
  const auto results = replicate(4, 1, fake_result);
  const double frac = fraction(results, [](const SimResult& r) { return r.successes >= 30; });
  EXPECT_DOUBLE_EQ(frac, 0.5);
  EXPECT_DOUBLE_EQ(fraction({}, [](const SimResult&) { return true; }), 0.0);
}

TEST(Harness, MeanSdFormat) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_EQ(mean_sd(acc, 1), "2.0±1.4");
}

TEST(Harness, ParallelReplicateMatchesSerial) {
  const auto serial = replicate(17, 10, fake_result, /*threads=*/1);
  for (const int threads : {2, 5, 8}) {
    const auto parallel = replicate(17, 10, fake_result, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) EXPECT_EQ(parallel[i], serial[i]);
  }
}

TEST(Harness, ReplicateMapCarriesArbitraryTypes) {
  const auto results = replicate_map(
      4, 7, [](std::uint64_t seed) { return std::to_string(seed); }, /*threads=*/2);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], "7");
  EXPECT_EQ(results[3], "10");
}

}  // namespace
}  // namespace cr
