// Thin compatibility wrapper over the BenchRegistry entry "first_success"
// (implementation: src/cli/benches/first_success.cpp). Prefer `cr bench first_success`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "first_success", std::vector<std::string>(argv + 1, argv + argc));
}
