// Thin compatibility wrapper over the BenchRegistry entry "cd_contrast"
// (implementation: src/cli/benches/cd_contrast.cpp). Prefer `cr bench cd_contrast`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "cd_contrast", std::vector<std::string>(argv + 1, argv + argc));
}
