// Thin compatibility wrapper over the BenchRegistry entry "ablation"
// (implementation: src/cli/benches/ablation.cpp). Prefer `cr bench ablation`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "ablation", std::vector<std::string>(argv + 1, argv + argc));
}
