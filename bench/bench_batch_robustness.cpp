// E4 "batch robustness" — remark after Claim 3.5.1 + the batch subroutine's
// role in the algorithm (Section 2, "Achieving jamming resistance").
//
// Prediction: with n nodes starting simultaneously, h_data-batch delivers a
// constant fraction of all n messages within O(n) slots even when a constant
// fraction of those slots is jammed. (Finishing *all* of them is what it
// cannot do — see E3.)
//
// We sweep the jamming rate and report the fraction delivered within c·n
// slots for c ∈ {2, 4, 8}.
//
// Flags: --n (default 4096), --reps=N (default 15), --quick, --threads
#include <iostream>

#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/batch.hpp"

using namespace cr;

int main(int argc, char** argv) {
  const BenchDriver driver(argc, argv,
                           {"E4", "h_data-batch delivers a constant fraction under jamming",
                            {"n"}});
  const auto n = static_cast<std::uint64_t>(driver.get_int("n", 4096, 1024));
  const int reps = driver.reps(15, 5);

  std::cout << "E4: h_data-batch delivers a constant fraction of n in O(n) slots under jamming\n"
            << "n = " << n << ", i.i.d. jamming at the given rate.\n\n";

  const ProtocolSpec h_data = profile_protocol(profiles::h_data());
  const Engine& engine = EngineRegistry::instance().preferred(h_data);

  Table table({"jam rate", "frac by 2n", "frac by 4n", "frac by 8n"});
  for (const double jam : {0.0, 0.1, 0.25, 0.4}) {
    const auto results = driver.replicate(reps, driver.seed(31000), [&](std::uint64_t s) {
      Scenario sc = batch_scenario(n, jam, 8 * n, functions_constant_g(4.0));
      sc.protocol = h_data;
      sc.config.seed = s;
      sc.config.recording = RecordingConfig::success_times();
      return run_scenario(engine, sc);
    });
    const double dn = static_cast<double>(n);
    const auto by2 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 2 * n)) / dn;
    });
    const auto by4 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 4 * n)) / dn;
    });
    const auto by8 = collect(results, [&](const SimResult& r) {
      return static_cast<double>(successes_in_window(r, 1, 8 * n)) / dn;
    });
    table.add_row({Cell(jam, 2), mean_sd(by2, 3), mean_sd(by4, 3), mean_sd(by8, 3)});
  }
  table.print(std::cout);

  std::cout << "\nReading: even at 40% jamming a constant fraction (not a vanishing one) of\n"
               "the batch is delivered within a few multiples of n — the property Phase 3\n"
               "of the algorithm is built on.\n";
  return 0;
}
