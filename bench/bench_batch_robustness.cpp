// Thin compatibility wrapper over the BenchRegistry entry "batch_robustness"
// (implementation: src/cli/benches/batch_robustness.cpp). Prefer `cr bench batch_robustness`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "batch_robustness", std::vector<std::string>(argv + 1, argv + argc));
}
