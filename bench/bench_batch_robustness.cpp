// E4 "batch robustness" — remark after Claim 3.5.1 + the batch subroutine's
// role in the algorithm (Section 2, "Achieving jamming resistance").
//
// Prediction: with n nodes starting simultaneously, h_data-batch delivers a
// constant fraction of all n messages within O(n) slots even when a constant
// fraction of those slots is jammed. (Finishing *all* of them is what it
// cannot do — see E3.)
//
// We sweep the jamming rate and report the fraction delivered within c·n
// slots for c ∈ {2, 4, 8}.
//
// Flags: --n (default 4096), --reps=N (default 15), --quick
#include <iostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/fast_batch.hpp"
#include "exp/harness.hpp"
#include "metrics/metrics.hpp"
#include "protocols/batch.hpp"

using namespace cr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const std::uint64_t n = static_cast<std::uint64_t>(cli.get_int("n", quick ? 1024 : 4096));
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 5 : 15));

  std::cout << "E4: h_data-batch delivers a constant fraction of n in O(n) slots under jamming\n"
            << "n = " << n << ", i.i.d. jamming at the given rate.\n\n";

  Table table({"jam rate", "frac by 2n", "frac by 4n", "frac by 8n"});
  for (const double jam : {0.0, 0.1, 0.25, 0.4}) {
    Accumulator by2, by4, by8;
    for (int r = 0; r < reps; ++r) {
      ComposedAdversary adv(batch_arrival(n, 1),
                            jam > 0 ? iid_jammer(jam) : no_jam());
      SimConfig cfg;
      cfg.horizon = 8 * n;
      cfg.seed = 31000 + static_cast<std::uint64_t>(r);
      cfg.record_success_times = true;
      const SimResult res = run_fast_batch(profiles::h_data(), adv, cfg);
      const double dn = static_cast<double>(n);
      by2.add(static_cast<double>(successes_in_window(res, 1, 2 * n)) / dn);
      by4.add(static_cast<double>(successes_in_window(res, 1, 4 * n)) / dn);
      by8.add(static_cast<double>(successes_in_window(res, 1, 8 * n)) / dn);
    }
    table.add_row({Cell(jam, 2), mean_sd(by2, 3), mean_sd(by4, 3), mean_sd(by8, 3)});
  }
  table.print(std::cout);

  std::cout << "\nReading: even at 40% jamming a constant fraction (not a vanishing one) of\n"
               "the batch is delivered within a few multiples of n — the property Phase 3\n"
               "of the algorithm is built on.\n";
  return 0;
}
