// E11 "engine performance" — google-benchmark microbenchmarks for the
// simulation substrates: slots/second of each engine and the hot RNG paths.
#include <benchmark/benchmark.h>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/rng.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/backoff.hpp"
#include "protocols/batch.hpp"
#include "protocols/cjz_node.hpp"

namespace {

using namespace cr;

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngNextU64);

void BM_RngBinomialSmall(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.binomial(32, 0.1));
}
BENCHMARK(BM_RngBinomialSmall);

void BM_RngBinomialInversion(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.binomial(10000, 0.001));
}
BENCHMARK(BM_RngBinomialInversion);

void BM_RngBinomialNormalApprox(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.binomial(1 << 20, 0.01));
}
BENCHMARK(BM_RngBinomialNormalApprox);

void BM_BackoffStep(benchmark::State& state) {
  const FunctionSet fs = functions_constant_g(4.0);
  Rng rng(1);
  BackoffProcess bp(&fs);
  for (auto _ : state) benchmark::DoNotOptimize(bp.step(rng));
}
BENCHMARK(BM_BackoffStep);

/// Slots/second of the fast CJZ engine on a steady dynamic workload.
void BM_FastCjzEngine(benchmark::State& state) {
  const auto horizon = static_cast<slot_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(bernoulli_arrivals(0.02), iid_jammer(0.1));
    SimConfig cfg;
    cfg.horizon = horizon;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_fast_cjz(fs, adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_FastCjzEngine)->Arg(1 << 14)->Arg(1 << 17);

/// The quiescent-tail shape of `cr perf`'s batch cell: one batch of 256 at
/// slot 1, i.i.d. jamming, and a horizon long enough that the empty-slot
/// path dominates — the scalar engine's per-slot floor.
void BM_FastCjzBatchTail(benchmark::State& state) {
  const auto horizon = static_cast<slot_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(batch_arrival(256, 1), iid_jammer(0.25));
    SimConfig cfg;
    cfg.horizon = horizon;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_fast_cjz(fs, adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_FastCjzBatchTail)->Arg(1 << 20);

/// Slots/second of the generic per-node engine on the same workload.
void BM_GenericCjzEngine(benchmark::State& state) {
  const auto horizon = static_cast<slot_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    CjzFactory factory(functions_constant_g(4.0));
    ComposedAdversary adv(bernoulli_arrivals(0.02), iid_jammer(0.1));
    SimConfig cfg;
    cfg.horizon = horizon;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_generic(factory, adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_GenericCjzEngine)->Arg(1 << 14);

/// The engines' scaling difference shows with a large live population: the
/// generic engine is O(live nodes) per slot, the cohort engine O(1).
void BM_FastCjzBigBatch(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  slot_t slots = 16 * n;
  for (auto _ : state) {
    FunctionSet fs = functions_constant_g(4.0);
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = slots;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_fast_cjz(fs, adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_FastCjzBigBatch)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenericCjzBigBatch(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  slot_t slots = 16 * n;
  for (auto _ : state) {
    CjzFactory factory(functions_constant_g(4.0));
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = slots;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_generic(factory, adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(slots));
}
BENCHMARK(BM_GenericCjzBigBatch)->Arg(1 << 12);

/// Slots/second of the fast batch engine draining a large cohort.
void BM_FastBatchEngine(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 16 * n;
    cfg.seed = seed++;
    benchmark::DoNotOptimize(run_fast_batch(profiles::h_data(), adv, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(16 * n));
}
BENCHMARK(BM_FastBatchEngine)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
