// Thin compatibility wrapper over the BenchRegistry entry "tradeoff"
// (implementation: src/cli/benches/tradeoff.cpp). Prefer `cr bench tradeoff`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "tradeoff", std::vector<std::string>(argv + 1, argv + argc));
}
