// Thin compatibility wrapper over the BenchRegistry entry "nonadaptive"
// (implementation: src/cli/benches/nonadaptive.cpp). Prefer `cr bench nonadaptive`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "nonadaptive", std::vector<std::string>(argv + 1, argv + argc));
}
