// E5 "non-adaptive fails" — Theorem 4.2.
//
// A protocol that broadcasts with a PRE-DEFINED probability a_i in its i-th
// slot (until the first heard success) cannot achieve optimal throughput
// under jamming. The constructive half: jam a prefix of t/(4·g(t)) slots.
// A decaying non-adaptive sequence (1/i — exponential backoff's profile) has
// already wasted its high-probability slots inside the jammed prefix and
// then needs ~another prefix-length to recover; the paper's adaptive
// backoff subroutine re-draws h(2^k) send slots per stage, so it recovers
// within a constant number of stages.
//
// We inject a single node at slot 1, jam [1, t/16], and measure the time to
// first success beyond the prefix ("excess") and the number of broadcasts.
//
// Flags: --reps=N (default 20), --max_exp (default 18), --quick
#include <iostream>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/fast_batch.hpp"
#include "engine/generic_sim.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

using namespace cr;

namespace {

struct Contender {
  const char* label;
  std::unique_ptr<ProtocolFactory> factory;
};

void measure(ProtocolFactory& factory, const char* label, slot_t t, int reps, Table& table) {
  const slot_t prefix = t / 16;
  Accumulator time_acc, excess_acc, sends_acc, solved;
  for (int r = 0; r < reps; ++r) {
    ComposedAdversary adv(batch_arrival(1, 1), prefix_jammer(prefix));
    SimConfig cfg;
    cfg.horizon = t;
    cfg.seed = 41000 + static_cast<std::uint64_t>(r);
    cfg.stop_when_empty = true;
    const SimResult res = run_generic(factory, adv, cfg);
    const double first =
        static_cast<double>(res.first_success == 0 ? t : res.first_success);
    time_acc.add(first);
    excess_acc.add(first - static_cast<double>(prefix));
    sends_acc.add(static_cast<double>(res.total_sends));
    solved.add(res.first_success != 0 ? 1.0 : 0.0);
  }
  table.add_row({Cell(static_cast<std::uint64_t>(t)), label,
                 Cell(static_cast<std::uint64_t>(prefix)), Cell(time_acc.mean(), 0),
                 mean_sd(excess_acc, 0), mean_sd(sends_acc, 1), Cell(solved.mean(), 2)});
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 8 : 20));
  const int max_exp = static_cast<int>(cli.get_int("max_exp", quick ? 16 : 18));

  std::cout << "E5 (Theorem 4.2): adaptive backoff vs non-adaptive sequences under prefix jam\n"
            << "Single node, slots [1, t/16] jammed. 'excess' = first success - prefix.\n\n";

  Table table({"t", "protocol", "jam prefix", "first succ", "excess", "sends", "solved"});
  for (int e = 14; e <= max_exp; e += 2) {
    const slot_t t = static_cast<slot_t>(1) << e;
    auto adaptive = backoff_protocol_factory(functions_constant_g(4.0));
    auto beb = windowed_backoff_factory({});
    ProfileProtocolFactory decay_1k(profiles::h_data());
    ProfileProtocolFactory decay_slow(profiles::poly_decay(1.0, 0.75));
    measure(*adaptive, "h-backoff (adaptive)", t, reps, table);
    measure(decay_1k, "non-adaptive 1/k", t, reps, table);
    measure(decay_slow, "non-adaptive 1/k^0.75", t, reps, table);
    measure(*beb, "windowed BEB", t, reps, table);
  }
  table.print(std::cout);

  std::cout << "\nReading: the adaptive subroutine's excess is a small fraction of the\n"
               "prefix; the 1/k sequence (already decayed) pays ~a full extra prefix.\n"
               "The slower 1/k^0.75 sequence survives jamming — but see the second horn:\n\n";

  // Horn 2 of the dilemma: a batch of n nodes injected simultaneously.
  // A sequence that decays slowly enough to survive jamming keeps contention
  // n·k^{-3/4} >> 1 for ~n^{4/3} slots: the first success is superlinearly
  // delayed. The adaptive backoff and the 1/k profile handle this fine.
  std::cout << "E5b (dilemma, second horn): first success after a batch of n nodes, no jam\n"
            << "(profiles measured at large n with the cohort engine; the drift is\n"
            << " ~n^(1/3)/log^(4/3)(n) in the /n column, so it needs big n to show)\n\n";
  Table t2({"n", "protocol", "first succ p50", "first succ /n", "solved"});
  const std::uint64_t max_n = quick ? (1 << 15) : (1 << 18);
  for (std::uint64_t n = 1 << 12; n <= max_n; n <<= (quick ? 1 : 2)) {
    struct Cand {
      const char* label;
      const SendProfile* profile;  // nullptr = adaptive backoff (generic engine)
    };
    const SendProfile p_1k = profiles::h_data();
    const SendProfile p_slow = profiles::poly_decay(1.0, 0.75);
    auto adaptive = backoff_protocol_factory(functions_constant_g(4.0));
    for (const Cand& cand : {Cand{"h-backoff (adaptive)", nullptr},
                             Cand{"non-adaptive 1/k", &p_1k},
                             Cand{"non-adaptive 1/k^0.75", &p_slow}}) {
      // The adaptive contender needs the O(live·slots) generic engine; its
      // ~linear first-success scaling is established by moderate n, so cap
      // it there rather than burn minutes on the largest sizes.
      if (cand.profile == nullptr && n > 8192) {
        t2.add_row({Cell(n), cand.label, "-", "-", "-"});
        continue;
      }
      Quantiles first;
      Accumulator solved;
      for (int r = 0; r < reps; ++r) {
        ComposedAdversary adv(batch_arrival(n, 1), no_jam());
        SimConfig cfg;
        cfg.horizon = 64 * n;
        cfg.seed = 43000 + static_cast<std::uint64_t>(r);
        cfg.stop_after_first_success = true;
        SimResult res;
        if (cand.profile != nullptr) {
          res = run_fast_batch(*cand.profile, adv, cfg);
        } else {
          cfg.horizon = 8 * n;  // generic engine; first success is early
          res = run_generic(*adaptive, adv, cfg);
        }
        first.add(static_cast<double>(res.first_success == 0 ? cfg.horizon
                                                             : res.first_success));
        solved.add(res.first_success != 0 ? 1.0 : 0.0);
      }
      t2.add_row({Cell(n), cand.label, Cell(first.quantile(0.5), 0),
                  Cell(first.quantile(0.5) / static_cast<double>(n), 2),
                  Cell(solved.mean(), 2)});
    }
  }
  t2.print(std::cout);

  std::cout << "\nReading: 1/k^0.75's first-success/n grows with n (superlinear delay from\n"
               "excess contention) while 1/k and the adaptive backoff stay ~linear. No\n"
               "fixed sequence wins both tables simultaneously — Theorem 4.2's dilemma;\n"
               "only the adaptive backoff subroutine is good in both.\n";
  return 0;
}
