// E10 "energy" — channel accesses per node.
//
// Related work frames energy (number of broadcasts a node makes before
// succeeding) as the second key metric; the CJZ algorithm's per-node energy
// is polylogarithmic: Phase 1/2 backoff contributes O(f·log) sends and
// Phase 3's batch profiles sum to O(log) in expectation per restart.
//
// We measure the per-node send distribution on batches (generic engine —
// the fast engines don't attribute sends) with and without jamming, and
// report it against log²(n).
//
// Flags: --reps=N (default 8), --max_n (default 512), --quick
#include <cmath>
#include <iostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/cjz_node.hpp"

using namespace cr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 3 : 8));
  const std::uint64_t max_n = static_cast<std::uint64_t>(cli.get_int("max_n", quick ? 256 : 512));

  std::cout << "E10: per-node channel accesses (energy) for the CJZ algorithm\n"
            << "Batch of n, generic engine. Prediction: mean/p99 energy = O(log^2 n),\n"
            << "mildly inflated by jamming.\n\n";

  Table table({"n", "jam", "energy mean", "energy p50", "energy p99", "energy max",
               "log2(n)^2"});
  for (std::uint64_t n = 64; n <= max_n; n <<= 1) {
    for (const double jam : {0.0, 0.25}) {
      Accumulator mean_acc, p50_acc, p99_acc, max_acc;
      for (int r = 0; r < reps; ++r) {
        CjzFactory factory(functions_constant_g(4.0));
        ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
        SimConfig cfg;
        cfg.horizon = 4'000'000;
        cfg.seed = 91000 + static_cast<std::uint64_t>(r);
        cfg.stop_when_empty = true;
        cfg.record_node_stats = true;
        const SimResult res = run_generic(factory, adv, cfg);
        const EnergyReport rep = energy_report(res);
        mean_acc.add(rep.mean);
        p50_acc.add(rep.p50);
        p99_acc.add(rep.p99);
        max_acc.add(rep.max);
      }
      const double l2 = std::pow(std::log2(static_cast<double>(n)), 2.0);
      table.add_row({Cell(n), Cell(jam, 2), Cell(mean_acc.mean(), 1), Cell(p50_acc.mean(), 1),
                     Cell(p99_acc.mean(), 1), Cell(max_acc.mean(), 1), Cell(l2, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: energy grows like the log^2(n) column (not like n) — polylog\n"
               "channel accesses per message, in line with the backoff-style algorithms\n"
               "the paper builds on.\n";
  return 0;
}
