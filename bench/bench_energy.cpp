// Thin compatibility wrapper over the BenchRegistry entry "energy"
// (implementation: src/cli/benches/energy.cpp). Prefer `cr bench energy`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "energy", std::vector<std::string>(argv + 1, argv + argc));
}
