// Thin compatibility wrapper over the BenchRegistry entry "batch_completion"
// (implementation: src/cli/benches/batch_completion.cpp). Prefer `cr bench batch_completion`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "batch_completion", std::vector<std::string>(argv + 1, argv + argc));
}
