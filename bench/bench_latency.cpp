// Thin compatibility wrapper over the BenchRegistry entry "latency"
// (implementation: src/cli/benches/latency.cpp). Prefer `cr bench latency`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "latency", std::vector<std::string>(argv + 1, argv + argc));
}
