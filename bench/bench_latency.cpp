// E9 "latency under smooth adversaries" — Corollary 3.6.
//
// Under a "smooth" adversary (arrivals O(j/f(j)) and jamming O(j/g(j)) in
// every suffix window of length j), every node arriving before slot t−j has
// departed by slot t w.h.p. in j. Operationally: latency tails are bounded
// by j ≈ latency·f-factor, and the maximum latency grows slowly with the
// run length.
//
// A trickle of single arrivals would make latency trivially 1 (a lone
// node's stage-0 backoff wins its arrival slot), so we use the burstiest
// arrival pattern that still satisfies the smooth budget — the registered
// "bursty" scenario: batches of B nodes every ceil(16·B·f(t)) slots, with
// budget-paced jamming on top. The interesting quantity is how the latency
// tail scales with B and with the g regime.
//
// Flags: --reps=N (default 10), --max_exp (default 18), --quick, --threads
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"

using namespace cr;

int main(int argc, char** argv) {
  const BenchDriver driver(argc, argv,
                           {"E9", "node latency under smooth adversaries (Cor 3.6)",
                            {"max_exp"}});
  const int reps = driver.reps(10, 4);
  const int max_exp = static_cast<int>(driver.get_int("max_exp", 18, 16));

  std::cout << "E9 (Corollary 3.6): node latency under smooth adversaries\n"
            << "Paced arrivals 1/(8f), budget jamming 1/(8g). Latency = slots in system.\n\n";

  Table table({"g regime", "t", "burst B", "departed", "stranded", "lat p50", "lat p99",
               "lat max", "p99/(B f)"});
  struct Regime {
    const char* label;
    const char* name;  ///< functions_for_regime key
    double gamma;      ///< const's value / exp_sqrt_log's scale
  } regimes[] = {
      {"const(4)", "const", 4.0},
      {"log2(x)", "log", 4.0},  // gamma unused
      {"2^sqrt(log)", "exp_sqrt_log", 1.0},
  };
  const slot_t t = static_cast<slot_t>(1) << max_exp;
  for (const auto& regime : regimes) {
    const FunctionSet fs = functions_for_regime(regime.name, regime.gamma);
    for (const std::uint64_t burst : {16ull, 64ull, 256ull}) {
      const double ft = fs.f(static_cast<double>(t));
      ScenarioParams params;
      params.horizon = t;
      params.n = burst;
      params.arrival_margin = 16.0;
      params.jam_margin = 8.0;
      params.g_regime = regime.name;
      params.gamma = regime.gamma;
      const auto runs = driver.replicate(reps, driver.seed(81000), [&](std::uint64_t s) {
        ScenarioParams p = params;
        p.seed = s;
        Scenario sc = ScenarioRegistry::instance().build("bursty", p);
        sc.config.record_node_stats = true;
        const SimResult res =
            run_scenario(EngineRegistry::instance().preferred(sc.protocol), sc);
        return latency_report(res);
      });
      Accumulator departed, stranded, p50, p99, maxv;
      for (const LatencyReport& rep : runs) {
        departed.add(static_cast<double>(rep.departed));
        stranded.add(static_cast<double>(rep.stranded));
        p50.add(rep.p50);
        p99.add(rep.p99);
        maxv.add(rep.max);
      }
      table.add_row({regime.label, Cell(static_cast<std::uint64_t>(t)), Cell(burst),
                     Cell(departed.mean(), 0), Cell(stranded.mean(), 1), Cell(p50.mean(), 0),
                     Cell(p99.mean(), 0), Cell(maxv.mean(), 0),
                     Cell(p99.mean() / (static_cast<double>(burst) * ft), 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: p99 latency scales like burst·f (the last column is a roughly\n"
               "constant service factor), stranded counts stay ~one burst — every node that\n"
               "arrived before the tail window departs, as Corollary 3.6 predicts for\n"
               "smooth adversaries.\n";
  return 0;
}
