// E9 "latency under smooth adversaries" — Corollary 3.6.
//
// Under a "smooth" adversary (arrivals O(j/f(j)) and jamming O(j/g(j)) in
// every suffix window of length j), every node arriving before slot t−j has
// departed by slot t w.h.p. in j. Operationally: latency tails are bounded
// by j ≈ latency·f-factor, and the maximum latency grows slowly with the
// run length.
//
// A trickle of single arrivals would make latency trivially 1 (a lone
// node's stage-0 backoff wins its arrival slot), so we use the burstiest
// arrival pattern that still satisfies the smooth budget: batches of B
// nodes every ceil(16·B·f(t)) slots, with budget-paced jamming on top. The
// interesting quantity is how the latency tail scales with B and with the
// g regime.
//
// Flags: --reps=N (default 10), --max_exp (default 18), --quick
#include <cmath>
#include <iostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "engine/fast_cjz.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"

using namespace cr;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 4 : 10));
  const int max_exp = static_cast<int>(cli.get_int("max_exp", quick ? 16 : 18));

  std::cout << "E9 (Corollary 3.6): node latency under smooth adversaries\n"
            << "Paced arrivals 1/(8f), budget jamming 1/(8g). Latency = slots in system.\n\n";

  Table table({"g regime", "t", "burst B", "departed", "stranded", "lat p50", "lat p99",
               "lat max", "p99/(B f)"});
  struct Regime {
    const char* label;
    FunctionSet fs;
  } regimes[] = {
      {"const(4)", functions_constant_g(4.0)},
      {"log2(x)", functions_log_g()},
      {"2^sqrt(log)", functions_exp_sqrt_log_g(1.0)},
  };
  const slot_t t = static_cast<slot_t>(1) << max_exp;
  for (const auto& regime : regimes) {
    for (const std::uint64_t burst : {16ull, 64ull, 256ull}) {
      const double ft = regime.fs.f(static_cast<double>(t));
      const auto period =
          static_cast<slot_t>(std::max(1.0, std::ceil(16.0 * static_cast<double>(burst) * ft)));
      Accumulator departed, stranded, p50, p99, maxv;
      for (int r = 0; r < reps; ++r) {
        ComposedAdversary adv(bursty_arrivals(period, burst),
                              budget_paced_jammer(regime.fs.g, 8.0));
        SimConfig cfg;
        cfg.horizon = t;
        cfg.seed = 81000 + static_cast<std::uint64_t>(r);
        cfg.record_node_stats = true;
        const SimResult res = run_fast_cjz(regime.fs, adv, cfg);
        const LatencyReport rep = latency_report(res);
        departed.add(static_cast<double>(rep.departed));
        stranded.add(static_cast<double>(rep.stranded));
        p50.add(rep.p50);
        p99.add(rep.p99);
        maxv.add(rep.max);
      }
      table.add_row({regime.label, Cell(static_cast<std::uint64_t>(t)), Cell(burst),
                     Cell(departed.mean(), 0), Cell(stranded.mean(), 1), Cell(p50.mean(), 0),
                     Cell(p99.mean(), 0), Cell(maxv.mean(), 0),
                     Cell(p99.mean() / (static_cast<double>(burst) * ft), 2)});
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: p99 latency scales like burst·f (the last column is a roughly\n"
               "constant service factor), stranded counts stay ~one burst — every node that\n"
               "arrived before the tail window departs, as Corollary 3.6 predicts for\n"
               "smooth adversaries.\n";
  return 0;
}
