// RNG substrate microbenchmarks: scalar draws vs the batched block APIs the
// lockstep plan path leans on (Rng::fill coin buffers, CounterRng::fill /
// Stream::fill paired Philox blocks, fill_keys / binomial_keys replication
// sweeps). Run by hand; the bit-exactness of every batched call against its
// scalar loop is asserted in tests/test_rng.cpp — this file only tracks the
// throughput gap that justifies the batching.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"

namespace {

using namespace cr;

void BM_RngFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    rng.fill(out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RngFill)->Arg(64)->Arg(4096);

void BM_RngScalarLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) out[i] = rng.next_u64();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RngScalarLoop)->Arg(64)->Arg(4096);

void BM_CounterAt(benchmark::State& state) {
  const CounterRng rng(1);
  std::uint64_t index = 0;
  for (auto _ : state) benchmark::DoNotOptimize(rng.at(7, index++));
}
BENCHMARK(BM_CounterAt);

void BM_CounterFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CounterRng rng(1);
  std::vector<std::uint64_t> out(n);
  std::uint64_t start = 0;
  for (auto _ : state) {
    rng.fill(7, start, out.data(), n);
    start += n;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CounterFill)->Arg(64)->Arg(4096);

void BM_StreamFill(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto stream = CounterRng(1).stream(7);
  std::vector<std::uint64_t> out(n);
  for (auto _ : state) {
    stream.fill(out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StreamFill)->Arg(64)->Arg(4096);

void BM_FillKeys(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> keys(r);
  for (std::size_t i = 0; i < r; ++i) keys[i] = CounterRng(i + 1).key();
  std::vector<std::uint64_t> out(r);
  std::uint64_t hi = 0;
  for (auto _ : state) {
    CounterRng::fill_keys(keys.data(), r, hi++, 0, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r));
}
BENCHMARK(BM_FillKeys)->Arg(1024);

void BM_BinomialKeysInversion(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> keys(r);
  for (std::size_t i = 0; i < r; ++i) keys[i] = CounterRng(i + 1).key();
  std::vector<std::uint64_t> out(r);
  std::uint64_t hi = 0;
  for (auto _ : state) {
    CounterRng::binomial_keys(keys.data(), r, hi++, 10000, 0.001, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r));
}
BENCHMARK(BM_BinomialKeysInversion)->Arg(1024);

void BM_BinomialKeysScalarLoop(benchmark::State& state) {
  const auto r = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> keys(r);
  for (std::size_t i = 0; i < r; ++i) keys[i] = CounterRng(i + 1).key();
  std::vector<std::uint64_t> out(r);
  std::uint64_t hi = 0;
  for (auto _ : state) {
    ++hi;
    for (std::size_t i = 0; i < r; ++i) {
      auto stream = CounterRng(keys[i]).stream(hi);
      out[i] = stream.binomial(10000, 0.001);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r));
}
BENCHMARK(BM_BinomialKeysScalarLoop)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
