// Thin compatibility wrapper over the BenchRegistry entry "lowerbound"
// (implementation: src/cli/benches/lowerbound.cpp). Prefer `cr bench lowerbound`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "lowerbound", std::vector<std::string>(argv + 1, argv + argc));
}
