// E7 "baseline comparison" — related-work framing (§1).
//
// Plain backoff schemes (binary exponential, polynomial, sawtooth) are known
// not to deliver constant throughput on batch arrivals; the CJZ algorithm
// does (up to its f factor). We race them on an n-node batch with no
// jamming and report the median completion time (capped at the horizon) and
// the fraction delivered within 32n slots.
//
// Every contender is a ProtocolSpec; the registry picks the fastest engine
// that can execute it (cohort engines for CJZ and the probability profile,
// the per-node reference engine for the windowed schemes).
//
// Flags: --reps=N (default 7), --max_n (default 512), --quick, --threads
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "exp/bench_driver.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

using namespace cr;

namespace {

struct Contender {
  const char* label;
  ProtocolSpec spec;
};

std::vector<Contender> contenders(bool with_profile) {
  std::vector<Contender> out;
  out.push_back({"cjz", cjz_protocol(functions_constant_g(4.0))});
  out.push_back({"beb", factory_protocol("windowed-beb", [] {
                   return windowed_backoff_factory({});
                 })});
  out.push_back({"sawtooth", factory_protocol("windowed-sawtooth", [] {
                   return windowed_backoff_factory({.scheme = WindowScheme::kSawtooth});
                 })});
  out.push_back({"poly", factory_protocol("windowed-poly", [] {
                   return windowed_backoff_factory(
                       {.scheme = WindowScheme::kPolynomial, .poly_exponent = 2.0});
                 })});
  if (with_profile) out.push_back({"h_data", profile_protocol(profiles::h_data())});
  return out;
}

struct Outcome {
  double median_completion;
  double frac_by_32n;
  bool capped;
};

Outcome race(const ProtocolSpec& spec, std::uint64_t n, const BenchDriver& driver, int reps,
             std::uint64_t base_seed) {
  const Engine& engine = EngineRegistry::instance().preferred(spec);
  const slot_t horizon = 4000 * n;
  const auto results = driver.replicate(reps, base_seed, [&](std::uint64_t s) {
    Scenario sc = batch_scenario(n, 0.0, horizon, functions_constant_g(4.0));
    sc.protocol = spec;
    sc.config.seed = s;
    sc.config.stop_when_empty = true;
    sc.config.recording = RecordingConfig::success_times();
    return run_scenario(engine, sc);
  });
  Quantiles completion;
  Accumulator frac;
  bool capped = false;
  for (const SimResult& res : results) {
    if (res.live_at_end != 0) capped = true;
    completion.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots));
    frac.add(static_cast<double>(successes_in_window(res, 1, 32 * n)) /
             static_cast<double>(n));
  }
  return {completion.median(), frac.mean(), capped};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchDriver driver(argc, argv,
                           {"E7", "CJZ vs classical backoff baselines", {"max_n"}});
  const bool quick = driver.quick();
  const int reps = driver.reps(7, 3);
  const auto max_n = static_cast<std::uint64_t>(driver.get_int("max_n", 512, 256));

  std::cout << "E7: CJZ vs classical backoff baselines on an n-node batch (no jamming)\n"
            << "median completion (slots; '>' = some runs hit the horizon cap) and\n"
            << "fraction delivered within 32n slots.\n\n";

  Table table({"n", "protocol", "median completion", "completion/n", "frac by 32n"});
  for (std::uint64_t n = 64; n <= max_n; n <<= 1) {
    for (const Contender& c : contenders(/*with_profile=*/true)) {
      const Outcome o = race(c.spec, n, driver, reps, driver.seed(61000));
      std::string med = o.capped ? ">" : "";
      med += format_double(o.median_completion, 0);
      table.add_row({Cell(n), c.label, med,
                     Cell(o.median_completion / static_cast<double>(n), 1),
                     Cell(o.frac_by_32n, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: on a clean batch the windowed schemes and CJZ are all ~n·polylog\n"
               "(constants differ); the probability-profile BEB (h_data) collapses. The\n"
               "structural separations show under dynamic arrivals and jamming:\n\n";

  // E7b: sustained arrival stream, moderate and overload rates.
  std::cout << "E7b: Bernoulli arrival stream for t slots, no jamming\n\n";
  Table t2({"t", "rate", "protocol", "arrivals", "served", "backlog at end"});
  const slot_t t = quick ? (1 << 15) : (1 << 17);
  for (const double rate : {0.1, 0.45}) {
    for (const Contender& c : contenders(/*with_profile=*/false)) {
      const Engine& engine = EngineRegistry::instance().preferred(c.spec);
      ScenarioParams params;
      params.horizon = t;
      params.rate = rate;
      params.jam = 0.0;
      const auto results = driver.replicate(reps, driver.seed(66000), [&](std::uint64_t s) {
        ScenarioParams p = params;
        p.seed = s;
        Scenario sc = ScenarioRegistry::instance().build("bernoulli_stream", p);
        sc.protocol = c.spec;
        return run_scenario(engine, sc);
      });
      const auto arrivals =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.arrivals); });
      const auto served = collect(results, [](const SimResult& r) {
        return r.arrivals ? static_cast<double>(r.successes) / static_cast<double>(r.arrivals)
                          : 1.0;
      });
      const auto backlog =
          collect(results, [](const SimResult& r) { return static_cast<double>(r.live_at_end); });
      t2.add_row({Cell(static_cast<std::uint64_t>(t)), Cell(rate, 2), c.label,
                  Cell(arrivals.mean(), 0), Cell(served.mean(), 3), mean_sd(backlog, 1)});
    }
  }
  t2.print(std::cout);

  // E7c: batch under 25% jamming.
  std::cout << "\nE7c: batch of n under 25% i.i.d. jamming — fraction delivered by 64n\n\n";
  Table t3({"n", "protocol", "frac by 64n"});
  const std::uint64_t nj = quick ? 128 : 256;
  for (const Contender& c : contenders(/*with_profile=*/true)) {
    const Engine& engine = EngineRegistry::instance().preferred(c.spec);
    const auto results = driver.replicate(reps, driver.seed(67000), [&](std::uint64_t s) {
      Scenario sc = batch_scenario(nj, 0.25, 64 * nj, functions_constant_g(4.0));
      sc.protocol = c.spec;
      sc.config.seed = s;
      return run_scenario(engine, sc);
    });
    const auto frac = collect(results, [&](const SimResult& r) {
      return static_cast<double>(r.successes) / static_cast<double>(nj);
    });
    t3.add_row({Cell(nj), c.label, mean_sd(frac, 3)});
  }
  t3.print(std::cout);

  std::cout << "\nReading (honest): on benign workloads — clean batches, Bernoulli streams,\n"
               "even i.i.d. jamming — the windowed schemes are competitive with CJZ (their\n"
               "constants are smaller; CJZ pays its f = Theta(log) overhead). The paper's\n"
               "separations are adversarial: the probability-profile BEB collapses on\n"
               "batches (E3/Claim 3.5.1), and every windowed scheme is a non-adaptive\n"
               "sequence in Theorem 4.2's sense, losing to h-backoff under prefix jamming\n"
               "(see bench_nonadaptive). CJZ is the only contender with worst-case\n"
               "guarantees across all of these at once.\n";
  return 0;
}
