// E7 "baseline comparison" — related-work framing (§1).
//
// Plain backoff schemes (binary exponential, polynomial, sawtooth) are known
// not to deliver constant throughput on batch arrivals; the CJZ algorithm
// does (up to its f factor). We race them on an n-node batch with no
// jamming and report the median completion time (capped at the horizon) and
// the fraction delivered within 32n slots.
//
// Flags: --reps=N (default 7), --max_n (default 512), --quick
#include <iostream>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "engine/fast_batch.hpp"
#include "engine/fast_cjz.hpp"
#include "engine/generic_sim.hpp"
#include "exp/harness.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/baselines.hpp"
#include "protocols/batch.hpp"

using namespace cr;

namespace {

struct Outcome {
  double median_completion;
  double frac_by_32n;
  bool capped;
};

Outcome race(const char* which, std::uint64_t n, int reps, std::uint64_t base_seed) {
  Quantiles completion;
  Accumulator frac;
  bool capped = false;
  for (int r = 0; r < reps; ++r) {
    ComposedAdversary adv(batch_arrival(n, 1), no_jam());
    SimConfig cfg;
    cfg.horizon = 4000 * n;
    cfg.seed = base_seed + static_cast<std::uint64_t>(r);
    cfg.stop_when_empty = true;
    cfg.record_success_times = true;
    SimResult res;
    const std::string name = which;
    if (name == "cjz") {
      res = run_fast_cjz(functions_constant_g(4.0), adv, cfg);
    } else if (name == "h_data") {
      res = run_fast_batch(profiles::h_data(), adv, cfg);
    } else {
      WindowedBackoffOptions opts;
      if (name == "beb") opts.scheme = WindowScheme::kBinaryExponential;
      if (name == "poly") {
        opts.scheme = WindowScheme::kPolynomial;
        opts.poly_exponent = 2.0;
      }
      if (name == "sawtooth") opts.scheme = WindowScheme::kSawtooth;
      auto factory = windowed_backoff_factory(opts);
      res = run_generic(*factory, adv, cfg);
    }
    if (res.live_at_end != 0) capped = true;
    completion.add(static_cast<double>(res.live_at_end == 0 ? res.last_success : res.slots));
    frac.add(static_cast<double>(successes_in_window(res, 1, 32 * n)) /
             static_cast<double>(n));
  }
  return {completion.median(), frac.mean(), capped};
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int reps = static_cast<int>(cli.get_int("reps", quick ? 3 : 7));
  const std::uint64_t max_n = static_cast<std::uint64_t>(cli.get_int("max_n", quick ? 256 : 512));

  std::cout << "E7: CJZ vs classical backoff baselines on an n-node batch (no jamming)\n"
            << "median completion (slots; '>' = some runs hit the horizon cap) and\n"
            << "fraction delivered within 32n slots.\n\n";

  Table table({"n", "protocol", "median completion", "completion/n", "frac by 32n"});
  for (std::uint64_t n = 64; n <= max_n; n <<= 1) {
    for (const char* which : {"cjz", "beb", "sawtooth", "poly", "h_data"}) {
      const Outcome o = race(which, n, reps, 61000);
      std::string med = o.capped ? ">" : "";
      med += format_double(o.median_completion, 0);
      table.add_row({Cell(n), which, med,
                     Cell(o.median_completion / static_cast<double>(n), 1),
                     Cell(o.frac_by_32n, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: on a clean batch the windowed schemes and CJZ are all ~n·polylog\n"
               "(constants differ); the probability-profile BEB (h_data) collapses. The\n"
               "structural separations show under dynamic arrivals and jamming:\n\n";

  // E7b: sustained arrival stream, moderate and overload rates.
  std::cout << "E7b: Bernoulli arrival stream for t slots, no jamming\n\n";
  Table t2({"t", "rate", "protocol", "arrivals", "served", "backlog at end"});
  const slot_t t = quick ? (1 << 15) : (1 << 17);
  for (const double rate : {0.1, 0.45}) {
  for (const char* which : {"cjz", "beb", "sawtooth", "poly"}) {
    Accumulator served, backlog, arrivals;
    for (int r = 0; r < reps; ++r) {
      ComposedAdversary adv(bernoulli_arrivals(rate, 1, t), no_jam());
      SimConfig cfg;
      cfg.horizon = t;
      cfg.seed = 66000 + static_cast<std::uint64_t>(r);
      SimResult res;
      const std::string name = which;
      if (name == "cjz") {
        res = run_fast_cjz(functions_constant_g(4.0), adv, cfg);
      } else {
        WindowedBackoffOptions opts;
        if (name == "poly") {
          opts.scheme = WindowScheme::kPolynomial;
          opts.poly_exponent = 2.0;
        }
        if (name == "sawtooth") opts.scheme = WindowScheme::kSawtooth;
        auto factory = windowed_backoff_factory(opts);
        res = run_generic(*factory, adv, cfg);
      }
      arrivals.add(static_cast<double>(res.arrivals));
      served.add(res.arrivals ? static_cast<double>(res.successes) /
                                    static_cast<double>(res.arrivals)
                              : 1.0);
      backlog.add(static_cast<double>(res.live_at_end));
    }
    t2.add_row({Cell(static_cast<std::uint64_t>(t)), Cell(rate, 2), which,
                Cell(arrivals.mean(), 0), Cell(served.mean(), 3), mean_sd(backlog, 1)});
  }
  }
  t2.print(std::cout);

  // E7c: batch under 25% jamming.
  std::cout << "\nE7c: batch of n under 25% i.i.d. jamming — fraction delivered by 64n\n\n";
  Table t3({"n", "protocol", "frac by 64n"});
  const std::uint64_t nj = quick ? 128 : 256;
  for (const char* which : {"cjz", "beb", "sawtooth", "poly", "h_data"}) {
    Accumulator frac;
    for (int r = 0; r < reps; ++r) {
      ComposedAdversary adv(batch_arrival(nj, 1), iid_jammer(0.25));
      SimConfig cfg;
      cfg.horizon = 64 * nj;
      cfg.seed = 67000 + static_cast<std::uint64_t>(r);
      SimResult res;
      const std::string name = which;
      if (name == "cjz") {
        res = run_fast_cjz(functions_constant_g(4.0), adv, cfg);
      } else if (name == "h_data") {
        res = run_fast_batch(profiles::h_data(), adv, cfg);
      } else {
        WindowedBackoffOptions opts;
        if (name == "poly") {
          opts.scheme = WindowScheme::kPolynomial;
          opts.poly_exponent = 2.0;
        }
        if (name == "sawtooth") opts.scheme = WindowScheme::kSawtooth;
        auto factory = windowed_backoff_factory(opts);
        res = run_generic(*factory, adv, cfg);
      }
      frac.add(static_cast<double>(res.successes) / static_cast<double>(nj));
    }
    t3.add_row({Cell(nj), which, mean_sd(frac, 3)});
  }
  t3.print(std::cout);

  std::cout << "\nReading (honest): on benign workloads — clean batches, Bernoulli streams,\n"
               "even i.i.d. jamming — the windowed schemes are competitive with CJZ (their\n"
               "constants are smaller; CJZ pays its f = Theta(log) overhead). The paper's\n"
               "separations are adversarial: the probability-profile BEB collapses on\n"
               "batches (E3/Claim 3.5.1), and every windowed scheme is a non-adaptive\n"
               "sequence in Theorem 4.2's sense, losing to h-backoff under prefix jamming\n"
               "(see bench_nonadaptive). CJZ is the only contender with worst-case\n"
               "guarantees across all of these at once.\n";
  return 0;
}
