// Thin compatibility wrapper over the BenchRegistry entry "baselines"
// (implementation: src/cli/benches/baselines.cpp). Prefer `cr bench baselines`;
// this binary is kept so existing scripts keep working — see the migration
// table in README.md.
#include <string>
#include <vector>

#include "cli/bench_registry.hpp"

int main(int argc, char** argv) {
  return cr::BenchRegistry::instance().run(
      "baselines", std::vector<std::string>(argv + 1, argv + argc));
}
