// Trace explorer: watch the algorithm run, slot by slot.
//
// Runs a small batch through the reference engine and prints an annotated
// timeline —
//     .  silent slot          *  collision
//     S  successful delivery  X  jammed slot
// — plus the phase trajectory of one tracked node (Phase 1 -> 2 -> 3 and
// its Phase-3 restarts), which makes the two-conceptual-channels mechanism
// visible: successes alternate between the parity channels as control and
// data swap roles.
//
// Run:   ./build/examples/trace_explorer [--n=12] [--jam=0.15] [--slots=400]
#include <iostream>
#include <memory>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "engine/generic_sim.hpp"
#include "exp/scenarios.hpp"
#include "protocols/cjz_node.hpp"

namespace {

using namespace cr;

/// Published state of the tracked node; outlives the node itself.
struct TrackState {
  CjzNode::Phase phase = CjzNode::Phase::kOne;
  bool alive = false;
};

/// Forwards to a CjzNode while mirroring its phase into a shared TrackState
/// (safe to read even after the node departed and was destroyed).
class TrackedNode final : public NodeProtocol {
 public:
  TrackedNode(std::unique_ptr<NodeProtocol> inner, std::shared_ptr<TrackState> state)
      : inner_(std::move(inner)), state_(std::move(state)) {
    state_->alive = true;
    publish();
  }
  ~TrackedNode() override { state_->alive = false; }

  bool on_slot(slot_t now, Rng& rng) override { return inner_->on_slot(now, rng); }
  void on_feedback(slot_t now, Feedback fb, bool sent, bool own) override {
    inner_->on_feedback(now, fb, sent, own);
    publish();
  }

 private:
  void publish() { state_->phase = static_cast<const CjzNode*>(inner_.get())->phase(); }
  std::unique_ptr<NodeProtocol> inner_;
  std::shared_ptr<TrackState> state_;
};

/// Wraps CjzFactory; the first spawned node is tracked.
class TrackingFactory final : public ProtocolFactory {
 public:
  explicit TrackingFactory(FunctionSet fs)
      : inner_(std::move(fs)), state_(std::make_shared<TrackState>()) {}

  std::unique_ptr<NodeProtocol> spawn(node_id id, slot_t arrival, Rng& rng) override {
    auto node = inner_.spawn(id, arrival, rng);
    if (!tracked_yet_) {
      tracked_yet_ = true;
      return std::make_unique<TrackedNode>(std::move(node), state_);
    }
    return node;
  }
  std::string name() const override { return inner_.name(); }

  const TrackState& tracked() const { return *state_; }

 private:
  CjzFactory inner_;
  std::shared_ptr<TrackState> state_;
  bool tracked_yet_ = false;
};

char phase_char(CjzNode::Phase p) {
  switch (p) {
    case CjzNode::Phase::kOne: return '1';
    case CjzNode::Phase::kTwo: return '2';
    case CjzNode::Phase::kThree: return '3';
  }
  return '?';
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 12));
  const double jam = cli.get_double("jam", 0.15);
  const auto slots = static_cast<slot_t>(cli.get_int("slots", 400));
  cli.declare({"seed"});  // read below, after the check
  cli.reject_unknown();

  CjzFactory factory(functions_constant_g(4.0));
  ComposedAdversary adv(batch_arrival(n, 1), jam > 0 ? iid_jammer(jam) : no_jam());
  SimConfig cfg;
  cfg.horizon = slots;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  GenericSimulator sim(factory, adv, cfg);
  const SimResult res = sim.run();

  std::cout << "trace_explorer: " << n << " nodes, jam " << jam << ", " << res.slots
            << " slots, " << res.successes << " delivered\n\n"
            << "timeline ('.' silence, '*' collision, 'S' success, 'X' jammed):\n";

  const slot_t width = 80;
  for (slot_t row = 1; row <= res.slots; row += width) {
    std::cout << "  ";
    for (slot_t s = row; s < row + width && s <= res.slots; ++s) {
      const SlotOutcome& out = sim.trace().outcome(s);
      char c = '.';
      if (out.jammed) c = 'X';
      else if (out.success()) c = 'S';
      else if (out.senders >= 2) c = '*';
      std::cout << c;
    }
    std::cout << "\n";
  }

  std::cout << "\nchannel view: successes by slot parity (channel 0 = even slots,\n"
               "channel 1 = odd slots — the algorithm's control/data roles alternate):\n";
  std::uint64_t succ_even = 0, succ_odd = 0;
  for (slot_t s = 1; s <= res.slots; ++s) {
    const SlotOutcome& out = sim.trace().outcome(s);
    if (!out.success()) continue;
    (parity_channel(s) == 0 ? succ_even : succ_odd) += 1;
  }
  std::cout << "  channel 0 (even): " << succ_even << " successes\n"
            << "  channel 1 (odd) : " << succ_odd << " successes\n";

  std::cout << "\nsummary: " << res.successes << "/" << res.arrivals
            << " delivered, " << res.jammed_slots << " jammed slots, "
            << res.total_sends << " transmissions ("
            << (res.successes ? static_cast<double>(res.total_sends) /
                                    static_cast<double>(res.successes)
                              : 0.0)
            << " per delivery)\n";

  // Re-run a few slots manually to show the tracked node's phase machine.
  std::cout << "\nphase walk of one node (fresh 60-slot run, no jamming):\n  ";
  TrackingFactory track(functions_constant_g(4.0));
  ComposedAdversary adv2(batch_arrival(4, 1), no_jam());
  SimConfig cfg2;
  cfg2.horizon = 60;
  cfg2.seed = 5;
  // Drive the engine one full run; the tracked pointer stays valid while the
  // node is alive; phase snapshots are taken through a custom observer.
  class PhaseObserver final : public SlotObserver {
   public:
    explicit PhaseObserver(const TrackingFactory& f) : f_(f) {}
    void on_slot(const SlotOutcome& out, std::uint64_t, std::uint64_t) override {
      line += f_.tracked().alive ? phase_char(f_.tracked().phase) : '-';
      if (out.success()) line += '!';
    }
    std::string line;

   private:
    const TrackingFactory& f_;
  };
  PhaseObserver obs(track);
  GenericSimulator sim2(track, adv2, cfg2);
  sim2.set_observer(&obs);
  sim2.run();
  std::cout << obs.line << "\n"
            << "  (digits = tracked node's phase per slot; '!' marks a success —\n"
            << "   watch it move 1 -> 2 -> 3 as successes land)\n";
  return 0;
}
