// Scenario: a saturated wireless cell.
//
// The paper's opening motivation is congestion control on shared media
// (Ethernet, 802.11). This example models a hot access point: a steady
// trickle of stations plus periodic flash crowds (a train arrives at the
// platform every few seconds), all contending on one channel with no
// collision detection. We compare the paper's algorithm with classical
// windowed backoff on latency and backlog — each contender is a
// ProtocolSpec run on the fastest engine that supports it.
//
// Run:   ./build/examples/wifi_saturation [--slots=131072] [--burst=96]
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "exp/scenarios.hpp"
#include "metrics/metrics.hpp"
#include "protocols/baselines.hpp"

namespace {

/// Steady Bernoulli stations plus a flash crowd every `period` slots.
class HotCellArrivals final : public cr::ArrivalProcess {
 public:
  HotCellArrivals(double rate, cr::slot_t period, std::uint64_t burst)
      : rate_(rate), period_(period), burst_(burst) {}

  std::uint64_t arrivals(cr::slot_t slot, const cr::PublicHistory&, cr::Rng& rng) override {
    std::uint64_t k = rng.bernoulli(rate_) ? 1 : 0;
    if (slot % period_ == 1) k += burst_;
    return k;
  }
  std::string name() const override { return "hot-cell"; }

 private:
  double rate_;
  cr::slot_t period_;
  std::uint64_t burst_;
};

}  // namespace

int main(int argc, char** argv) {
  const cr::Cli cli(argc, argv);
  const auto slots = static_cast<cr::slot_t>(cli.get_int("slots", 131072));
  const auto burst = static_cast<std::uint64_t>(cli.get_int("burst", 96));
  const double rate = cli.get_double("rate", 0.002);
  const auto period = static_cast<cr::slot_t>(cli.get_int("period", 16384));
  cli.reject_unknown();

  std::cout << "wifi_saturation: steady stations (rate " << rate << "/slot) + flash crowd of "
            << burst << " every " << period << " slots, " << slots << " slots total\n\n";

  cr::Table table({"protocol", "engine", "arrivals", "served", "backlog", "lat p50",
                   "lat p99", "lat max"});

  struct Contender {
    const char* label;
    cr::ProtocolSpec spec;
  } contenders[] = {
      {"cjz", cr::cjz_protocol(cr::functions_constant_g(4.0))},
      {"beb", cr::factory_protocol("windowed-beb",
                                   [] { return cr::windowed_backoff_factory({}); })},
      {"sawtooth", cr::factory_protocol("windowed-sawtooth", [] {
         return cr::windowed_backoff_factory({.scheme = cr::WindowScheme::kSawtooth});
       })},
  };

  for (const Contender& c : contenders) {
    cr::SimConfig cfg;
    cfg.horizon = slots;
    cfg.seed = 7;
    cfg.recording = cr::RecordingConfig::node_stats();

    cr::ComposedAdversary adv(std::make_unique<HotCellArrivals>(rate, period, burst),
                              cr::no_jam());
    const cr::Engine& engine = cr::EngineRegistry::instance().preferred(c.spec);
    const cr::SimResult res = engine.run(c.spec, adv, cfg);
    const cr::LatencyReport lat = cr::latency_report(res);
    table.add_row({c.label, engine.name(), cr::Cell(res.arrivals),
                   cr::Cell(static_cast<double>(res.successes) /
                                static_cast<double>(res.arrivals),
                            3),
                   cr::Cell(res.live_at_end), cr::Cell(lat.p50, 0), cr::Cell(lat.p99, 0),
                   cr::Cell(lat.max, 0)});
  }
  table.print(std::cout);

  std::cout << "\nEach flash crowd is an adversarial batch: the paper's algorithm\n"
               "synchronizes the crowd onto its data channel and drains it in ~n log n\n"
               "slots with bounded per-station latency, without any collision-detection\n"
               "hardware assistance.\n";
  return 0;
}
