// Scenario: an escalating jamming attack.
//
// An attacker ramps its jamming duty cycle from 0% to 40% against a cell
// serving a steady stream of stations. The paper's trade-off says: an
// algorithm configured for constant-fraction tolerance (g = const) keeps a
// Θ(1/log t) goodput no matter what the attacker does with its budget —
// including *adaptive* strategies that target the slots right after each
// success (trying to break the algorithm's synchronization).
//
// Run:   ./build/examples/jamming_attack [--slots=131072]
#include <iostream>
#include <memory>

#include "adversary/adversary.hpp"
#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"

namespace {

/// Duty-cycle jammer that doubles its intensity in each quarter of the run.
class EscalatingJammer final : public cr::Jammer {
 public:
  EscalatingJammer(cr::slot_t horizon, double peak) : horizon_(horizon), peak_(peak) {}

  bool jams(cr::slot_t slot, const cr::PublicHistory&, cr::Rng& rng) override {
    const double phase = static_cast<double>(slot) / static_cast<double>(horizon_);
    const double rate = peak_ * (phase < 0.25 ? 0.0 : phase < 0.5 ? 0.25 : phase < 0.75 ? 0.5 : 1.0);
    return rng.bernoulli(rate);
  }
  std::string name() const override { return "escalating"; }

 private:
  cr::slot_t horizon_;
  double peak_;
};

}  // namespace

int main(int argc, char** argv) {
  const cr::Cli cli(argc, argv);
  const auto slots = static_cast<cr::slot_t>(cli.get_int("slots", 131072));
  cli.reject_unknown();

  const cr::FunctionSet fs = cr::functions_constant_g(4.0);
  const cr::ProtocolSpec spec = cr::cjz_protocol(fs);
  const cr::Engine& engine = cr::EngineRegistry::instance().preferred(spec);

  std::cout << "jamming_attack: stations arrive paced at 1/(6 f(t)); the attacker\n"
            << "escalates 0% -> 10% -> 20% -> 40% duty cycle across the run, or jams\n"
            << "reactively right after every success.\n\n";

  cr::Table table({"attack", "arrivals", "delivered", "served", "jammed slots",
                   "(f,g) ratio max"});

  struct Attack {
    const char* label;
    std::unique_ptr<cr::Jammer> jammer;
  };
  Attack attacks[3];
  attacks[0] = {"none", cr::no_jam()};
  attacks[1] = {"escalating to 40%", std::make_unique<EscalatingJammer>(slots, 0.4)};
  attacks[2] = {"reactive (post-success bursts)", cr::reactive_jammer(fs.g, 2.0, 2)};

  for (auto& attack : attacks) {
    cr::ComposedAdversary adv(cr::paced_arrivals(fs, 6.0), std::move(attack.jammer));
    cr::SimConfig cfg;
    cfg.horizon = slots;
    cfg.seed = 13;
    cr::ThroughputChecker checker(fs);
    const cr::SimResult res = engine.run(spec, adv, cfg, &checker);
    table.add_row({attack.label, cr::Cell(res.arrivals), cr::Cell(res.successes),
                   cr::Cell(static_cast<double>(res.successes) /
                                static_cast<double>(res.arrivals),
                            3),
                   cr::Cell(res.jammed_slots), cr::Cell(checker.max_ratio(), 3)});
  }
  table.print(std::cout);

  std::cout << "\nThe served fraction barely moves and the (f,g)-throughput ratio stays\n"
               "bounded under both attacks: with collision detection unavailable, this is\n"
               "the best robustness theoretically possible (Theorems 1.2 + 1.3), and the\n"
               "algorithm delivers it.\n";
  return 0;
}
