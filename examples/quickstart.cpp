// Quickstart: the smallest useful program against the library's public API.
//
//   1. pick a jamming-tolerance regime (g), which fixes the whole function
//      set the algorithm runs on;
//   2. describe the adversary (arrivals + jamming);
//   3. run the simulation and read the result.
//
// Build & run:   ./build/examples/quickstart [--n=100] [--jam=0.25] [--seed=1]
#include <iostream>

#include "adversary/arrivals.hpp"
#include "adversary/jammers.hpp"
#include "common/cli.hpp"
#include "engine/fast_cjz.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"

int main(int argc, char** argv) {
  const cr::Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 100));
  const double jam = cli.get_double("jam", 0.25);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. Functions: g = const(4) means "tolerate a constant fraction of
  //    jammed slots"; the induced f is Theta(log t) (Theorem 1.2).
  const cr::FunctionSet fs = cr::functions_constant_g(4.0);

  // 2. Adversary: n nodes arrive at slot 1; each slot is jammed i.i.d.
  cr::ComposedAdversary adversary(
      cr::batch_arrival(n, 1),
      jam > 0.0 ? cr::iid_jammer(jam) : cr::no_jam());

  // 3. Run the CJZ algorithm until every message got through (with a guard
  //    horizon), and verify Definition 1.1's bound online.
  cr::SimConfig config;
  config.horizon = 4'000'000;
  config.seed = seed;
  config.stop_when_empty = true;
  cr::ThroughputChecker checker(fs);
  const cr::SimResult result = cr::run_fast_cjz(fs, adversary, config, &checker);

  std::cout << "contention resolution without collision detection — quickstart\n"
            << "  nodes              : " << result.arrivals << "\n"
            << "  jam rate           : " << jam << "\n"
            << "  delivered          : " << result.successes << "\n"
            << "  slots used         : " << result.slots << "\n"
            << "  slots per message  : "
            << static_cast<double>(result.slots) / static_cast<double>(n) << "\n"
            << "  jammed slots       : " << result.jammed_slots << "\n"
            << "  total broadcasts   : " << result.total_sends << "\n"
            << "  (f,g) bound ratio  : " << checker.max_ratio()
            << "  (a_t <= const * (n_t f + d_t g) throughout)\n";

  if (result.successes == result.arrivals) {
    std::cout << "every message was delivered despite the jamming.\n";
    return 0;
  }
  std::cout << "some messages are still queued — raise --horizon or lower --jam.\n";
  return 1;
}
