// Quickstart: the smallest useful program against the library's public API.
//
//   1. pick a named workload from the scenario registry (parameterised by
//      batch size, jam rate, seed, ...);
//   2. let the engine registry pick the fastest engine that can run it;
//   3. run the simulation and read the result.
//
// Build & run:   ./build/examples/quickstart [--n=100] [--jam=0.25] [--seed=1]
#include <iostream>

#include "common/cli.hpp"
#include "exp/scenarios.hpp"
#include "metrics/throughput_check.hpp"

int main(int argc, char** argv) {
  const cr::Cli cli(argc, argv);
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 100));
  const double jam = cli.get_double("jam", 0.25);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cli.reject_unknown();  // a typo like --jamm=0.5 fails instead of being ignored

  // 1. Workload: n nodes arrive at slot 1; each slot is jammed i.i.d. The
  //    "batch" entry defaults to g = const(4) — "tolerate a constant
  //    fraction of jammed slots"; the induced f is Theta(log t) (Thm 1.2).
  cr::ScenarioParams params;
  params.n = n;
  params.jam = jam;
  params.seed = seed;
  params.horizon = 4'000'000;
  cr::Scenario scenario = cr::ScenarioRegistry::instance().build("batch", params);
  scenario.config.stop_when_empty = true;  // run until every message got through

  // 2. Engine: the registry returns the fastest engine that can execute the
  //    scenario's protocol (here the cohort-based CJZ engine).
  const cr::Engine& engine = cr::EngineRegistry::instance().preferred(scenario.protocol);

  // 3. Run, verifying Definition 1.1's bound online.
  cr::ThroughputChecker checker(scenario.fs);
  const cr::SimResult result = cr::run_scenario(engine, scenario, &checker);

  std::cout << "contention resolution without collision detection — quickstart\n"
            << "  engine             : " << engine.name() << "\n"
            << "  nodes              : " << result.arrivals << "\n"
            << "  jam rate           : " << jam << "\n"
            << "  delivered          : " << result.successes << "\n"
            << "  slots used         : " << result.slots << "\n"
            << "  slots per message  : "
            << static_cast<double>(result.slots) / static_cast<double>(n) << "\n"
            << "  jammed slots       : " << result.jammed_slots << "\n"
            << "  total broadcasts   : " << result.total_sends << "\n"
            << "  (f,g) bound ratio  : " << checker.max_ratio()
            << "  (a_t <= const * (n_t f + d_t g) throughout)\n";

  if (result.successes == result.arrivals) {
    std::cout << "every message was delivered despite the jamming.\n";
    return 0;
  }
  std::cout << "some messages are still queued — raise --horizon or lower --jam.\n";
  return 1;
}
